"""The pluggable cost-model seam the planner prices every decision through.

Before this module the planner read two module-global guesses
(:data:`DENSE_BLAS_SPEEDUP`, :data:`PYTHON_LOOP_PENALTY`) that were wrong on
any machine but the one they were eyeballed on.  Now every weighted-ops
comparison and every estimate goes through a :class:`CostModel` provider:

* :class:`StaticCostModel` — the historical constants, bit-identical to the
  pre-seam planner by construction (it *is* the same arithmetic, read
  through the provider interface).  Every constant is ``"assumed"``.
* :class:`ProfiledCostModel` — weights derived from a measured per-host
  :class:`~repro.calibrate.profile.CostProfile` (built by ``repro-simrank
  calibrate``), normalised so one sparse CSR multiply-add is the unit the
  planner has always costed in.  Measured kernels are ``"measured"``;
  anything the profile does not cover falls back to the static weight and
  stays honestly labelled ``"assumed"``.

Plans carry the constants they were priced with (kernel, weight,
provenance), so ``explain()`` can say not just *what* was decided but which
numbers the decision rested on — and a measured model additionally turns
abstract op counts into wall-clock estimates (``estimated_seconds``).
"""

from __future__ import annotations

from typing import Optional

from ..calibrate.profile import CostProfile, resolve_profile
from .capabilities import BackendTraits

__all__ = [
    "DENSE_BLAS_SPEEDUP",
    "PYTHON_LOOP_PENALTY",
    "STATIC_WEIGHTS",
    "CostModel",
    "ProfiledCostModel",
    "StaticCostModel",
    "active_cost_profile_digest",
    "resolve_cost_model",
]

DENSE_BLAS_SPEEDUP = 8.0
"""Assumed throughput advantage of dense BLAS over CSR products, per
multiply-add — the static guess a measured ``dense_gemm`` probe replaces."""

PYTHON_LOOP_PENALTY = 64.0
"""Assumed constant factor of per-vertex (Python-loop) solvers relative to
vectorised arithmetic — replaced by a measured ``python_vertex_step``."""

ASSUMED = "assumed"
MEASURED = "measured"

STATIC_WEIGHTS: dict[str, float] = {
    "sparse_matvec": 1.0,
    "dense_gemm": 1.0 / DENSE_BLAS_SPEEDUP,
    "series_step": 1.0,
    "topk_truncate": 1.0,
    "python_vertex_step": PYTHON_LOOP_PENALTY,
    "fingerprint_sample": 1.0,
}
"""The historical planner constants, expressed per kernel in units of one
sparse CSR multiply-add.  These are exactly the pre-seam weights: sparse
series ops at 1.0, dense discounted by ``DENSE_BLAS_SPEEDUP``, per-vertex
Python loops penalised by ``PYTHON_LOOP_PENALTY``."""

_UNIT_KERNEL = "sparse_matvec"
"""The kernel measured weights are normalised against (weight 1.0)."""


class CostModel:
    """Provider interface for every constant the planner prices with.

    ``weight(kernel)`` is the relative cost of one primitive operation of
    ``kernel`` in sparse-matvec units (what decisions compare);
    ``seconds_per_op(kernel)`` is the absolute measured rate when one
    exists (what wall-clock estimates multiply); ``provenance(kernel)``
    labels the number ``"measured"`` or ``"assumed"``; ``digest()`` keys
    plan caches.
    """

    source: str = "static"

    def weight(self, kernel: str) -> float:
        raise NotImplementedError

    def seconds_per_op(self, kernel: str) -> Optional[float]:
        raise NotImplementedError

    def provenance(self, kernel: str) -> str:
        raise NotImplementedError

    def digest(self) -> str:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Conveniences shared by every provider
    # ------------------------------------------------------------------ #
    def series_kernel(self, traits: BackendTraits) -> str:
        """The kernel pricing one series multiply-add on ``traits``."""
        return traits.resolved_series_kernel()

    def constant(self, kernel: str) -> tuple[str, float, str]:
        """One ``(kernel, weight, provenance)`` record for plan artifacts."""
        return (kernel, self.weight(kernel), self.provenance(kernel))

    def describe(self) -> dict[str, object]:
        """A JSON-serialisable summary for ``explain()`` output."""
        return {"source": self.source, "digest": self.digest()}


class StaticCostModel(CostModel):
    """The built-in fallback: the historical constants, all assumed."""

    source = "static"

    def weight(self, kernel: str) -> float:
        return STATIC_WEIGHTS.get(kernel, 1.0)

    def seconds_per_op(self, kernel: str) -> Optional[float]:
        return None

    def provenance(self, kernel: str) -> str:
        return ASSUMED

    def digest(self) -> str:
        return "static"


class ProfiledCostModel(CostModel):
    """Weights and rates measured by a per-host calibration profile.

    Weights are the profile's seconds-per-op normalised by its
    ``sparse_matvec`` rate, keeping the planner's unit (one CSR
    multiply-add) unchanged — so a measured model slots into exactly the
    comparisons the static one made, just with honest numbers.  A profile
    without the unit kernel can still supply wall-clock rates, but its
    relative weights (and their provenance) fall back to the static
    guesses: a ratio against an unmeasured unit would be fiction.
    """

    def __init__(self, profile: CostProfile, source: str = "profile") -> None:
        self.profile = profile
        self.source = source
        self._unit = profile.seconds_per_op(_UNIT_KERNEL)
        self._fallback = StaticCostModel()

    def weight(self, kernel: str) -> float:
        measured = self.profile.seconds_per_op(kernel)
        if measured is None or self._unit is None:
            return self._fallback.weight(kernel)
        return measured / self._unit

    def seconds_per_op(self, kernel: str) -> Optional[float]:
        return self.profile.seconds_per_op(kernel)

    def provenance(self, kernel: str) -> str:
        if self._unit is None or self.profile.seconds_per_op(kernel) is None:
            return ASSUMED
        return MEASURED

    def digest(self) -> str:
        return self.profile.digest()


def resolve_cost_model(config=None) -> CostModel:
    """Resolve the active cost model for ``config`` (or ambient state).

    Follows the layered order of
    :func:`repro.calibrate.profile.resolve_profile`: the config's explicit
    ``cost_profile`` path (errors raise), then ``REPRO_COST_PROFILE``, then
    the per-user profile (both warn and fall back), then
    :class:`StaticCostModel`.
    """
    explicit = getattr(config, "cost_profile", None)
    profile, source = resolve_profile(explicit)
    if profile is None:
        return StaticCostModel()
    return ProfiledCostModel(profile, source=source)


def active_cost_profile_digest() -> str:
    """The digest of the ambient cost profile, or ``"static"``.

    Stamped into every :class:`~repro.bench.runner.ExperimentReport` so
    benchmark trajectories say which host profile priced their plans.
    """
    try:
        return resolve_cost_model().digest()
    except Exception:  # never let report bookkeeping break an experiment
        return "static"
