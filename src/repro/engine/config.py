"""One frozen, validated configuration record for an engine session.

Every knob that used to be scattered across the free-function kwargs —
``simrank(method=, backend=, workers=)``, ``simrank_top_k(damping=,
accuracy=)``, ``build_index(memory_budget=)``, ``SimilarityService(
cache_size=, max_batch=)`` — lives here once, with one validation pass and
one serialisation format.  ``to_dict``/``from_dict`` (and the JSON variants)
round-trip losslessly, so the CLI, the benchmark harness and experiment
reports all share a single reproducible description of how a computation
was configured::

    >>> from repro import EngineConfig
    >>> config = EngineConfig(damping=0.8, workers=4)
    >>> EngineConfig.from_json(config.to_json()) == config
    True
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields, replace
from typing import Optional

from ..core.iteration_bounds import conventional_iterations
from ..core.result import validate_damping, validate_iterations
from ..exceptions import ConfigurationError

__all__ = ["AUTO_METHOD", "EngineConfig"]

AUTO_METHOD = "auto"
"""Sentinel method name: let the planner pick from the graph statistics."""


@dataclass(frozen=True)
class EngineConfig:
    """Every knob of an :class:`~repro.engine.Engine` session, validated.

    Attributes
    ----------
    method:
        Algorithm for all-pairs computation — a name from
        :func:`repro.available_methods`, an alias, or ``"auto"`` to let the
        planner choose from the graph statistics.  (Top-k, pair and serve
        tasks always run the matrix-form series path; the method only
        governs the all-pairs solve.)
    backend:
        Compute backend (``"dense"``/``"sparse"``) or ``None`` to let the
        planner pick (the method default for explicit methods, the
        cost-model choice under ``method="auto"``).
    damping:
        The damping factor ``C`` in ``(0, 1)``.
    accuracy:
        Target accuracy ``ε``; sets the series length when ``iterations``
        is ``None``.
    iterations:
        Explicit series length ``K`` (overrides ``accuracy``).
    workers:
        Process-parallel worker count: ``None``/1 serial, ``0``/negative
        all cores, anything else verbatim.
    memory_budget:
        Optional byte budget.  Bounds resident truncated rows during index
        builds (spilling to disk beyond it) and steers the planner away
        from artifacts that would not fit.
    index_k:
        Scores kept per vertex in the serving index.
    cache_size:
        LRU capacity of the serving cache tier (0 disables it).
    max_batch:
        Micro-batcher auto-flush threshold for serving misses.
    approx_walks:
        Reverse walks per vertex for the Monte-Carlo fingerprint tier.
    approx_head:
        Series terms the fingerprint tier evaluates exactly (variance
        reduction; see :class:`~repro.service.fingerprints.FingerprintIndex`).
    approx_seed:
        Seed for fingerprint sampling.
    max_error:
        Optional standard-error bound that admits the approximate serving
        tier; ``None`` keeps every query exact unless it opts in.
    slo_p99_ms:
        Optional p99 latency target (milliseconds) for the network serving
        tier.  When live p99 exceeds it the server degrades per
        ``shed_policy``; ``None`` disables SLO-driven degradation.
    shed_policy:
        What the server does under overload: ``"degrade"`` routes
        undecided queries (``approx=None``) to the Monte-Carlo tier while
        the SLO is breached and sheds only when queues are full;
        ``"shed"`` never degrades, returning typed SHED errors as soon as
        admission control trips.
    max_inflight:
        Requests admitted concurrently by the network server before
        load-shedding starts.
    queue_depth:
        Bound of the server's dispatch queue; arrivals beyond it are shed
        immediately with a typed error instead of waiting.
    catalog_path:
        Optional directory of a durable index catalog
        (:class:`~repro.catalog.IndexCatalog`).  ``Engine.build_index``
        commits the built index there, and ``Engine.serve`` warm-starts
        from it (memory-mapped, no rebuild) when the committed catalog
        matches the session's graph and configuration; ``None`` keeps
        indexes in memory only.
    cost_profile:
        Optional path to a calibrated cost-profile JSON (built by
        ``repro-simrank calibrate``), or the sentinel ``"static"`` to pin
        the built-in weights regardless of ambient profiles.  ``None``
        resolves layered: the ``REPRO_COST_PROFILE`` environment variable,
        then the per-user profile, then the static fallback (see
        :func:`repro.calibrate.resolve_profile`).
    """

    method: str = AUTO_METHOD
    backend: Optional[str] = None
    damping: float = 0.6
    accuracy: float = 1e-3
    iterations: Optional[int] = None
    workers: Optional[int] = None
    memory_budget: Optional[int] = None
    index_k: int = 50
    cache_size: int = 1024
    max_batch: int = 64
    approx_walks: int = 128
    approx_head: int = 4
    approx_seed: int = 0
    max_error: Optional[float] = None
    slo_p99_ms: Optional[float] = None
    shed_policy: str = "degrade"
    max_inflight: int = 256
    queue_depth: int = 1024
    catalog_path: Optional[str] = None
    cost_profile: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "damping", validate_damping(self.damping))
        if not isinstance(self.method, str) or not self.method:
            raise ConfigurationError(
                f"method must be a non-empty string, got {self.method!r}"
            )
        if self.backend is not None and not isinstance(self.backend, str):
            raise ConfigurationError(
                "backend must be a backend name or None, got "
                f"{type(self.backend).__name__} (pass instances to the "
                "free functions, names to EngineConfig)"
            )
        if not self.accuracy > 0.0:
            raise ConfigurationError(
                f"accuracy must be positive, got {self.accuracy}"
            )
        if self.iterations is not None:
            object.__setattr__(
                self, "iterations", validate_iterations(self.iterations)
            )
        if self.memory_budget is not None and self.memory_budget <= 0:
            raise ConfigurationError(
                f"memory_budget must be positive, got {self.memory_budget}"
            )
        if self.index_k <= 0:
            raise ConfigurationError(
                f"index_k must be positive, got {self.index_k}"
            )
        if self.cache_size < 0:
            raise ConfigurationError(
                f"cache_size must be non-negative, got {self.cache_size}"
            )
        if self.max_batch <= 0:
            raise ConfigurationError(
                f"max_batch must be positive, got {self.max_batch}"
            )
        if self.approx_walks <= 0:
            raise ConfigurationError(
                f"approx_walks must be positive, got {self.approx_walks}"
            )
        if self.approx_head < 0:
            raise ConfigurationError(
                f"approx_head must be non-negative, got {self.approx_head}"
            )
        if self.max_error is not None and self.max_error <= 0:
            raise ConfigurationError(
                f"max_error must be positive, got {self.max_error}"
            )
        if self.slo_p99_ms is not None and self.slo_p99_ms <= 0:
            raise ConfigurationError(
                f"slo_p99_ms must be positive, got {self.slo_p99_ms}"
            )
        if self.shed_policy not in ("degrade", "shed"):
            raise ConfigurationError(
                "shed_policy must be 'degrade' or 'shed', got "
                f"{self.shed_policy!r}"
            )
        if self.max_inflight <= 0:
            raise ConfigurationError(
                f"max_inflight must be positive, got {self.max_inflight}"
            )
        if self.queue_depth <= 0:
            raise ConfigurationError(
                f"queue_depth must be positive, got {self.queue_depth}"
            )
        if self.catalog_path is not None and (
            not isinstance(self.catalog_path, str) or not self.catalog_path
        ):
            raise ConfigurationError(
                "catalog_path must be a non-empty directory path or None, "
                f"got {self.catalog_path!r}"
            )
        if self.cost_profile is not None and (
            not isinstance(self.cost_profile, str) or not self.cost_profile
        ):
            raise ConfigurationError(
                "cost_profile must be a profile path, 'static', or None, "
                f"got {self.cost_profile!r}"
            )

    # ------------------------------------------------------------------ #
    # Derived values
    # ------------------------------------------------------------------ #
    def resolved_iterations(self) -> int:
        """The series length: ``iterations`` or the conventional bound."""
        if self.iterations is not None:
            return self.iterations
        return conventional_iterations(self.accuracy, self.damping)

    def with_overrides(self, **changes) -> "EngineConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return replace(self, **changes)

    def digest(self) -> str:
        """A short content hash of this config (plan-cache key component)."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()[:12]

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, object]:
        """A plain, JSON-serialisable dict of every field."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "EngineConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys raise :class:`~repro.exceptions.ConfigurationError`
        (a typo in a config file must not silently fall back to a
        default).
        """
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown EngineConfig keys: {', '.join(sorted(unknown))}; "
                f"valid keys: {', '.join(sorted(known))}"
            )
        return cls(**data)

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialise to a JSON string (key-sorted, reproducible)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "EngineConfig":
        """Rebuild a config from :meth:`to_json` output."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"invalid EngineConfig JSON: {error}"
            ) from None
        if not isinstance(data, dict):
            raise ConfigurationError(
                "EngineConfig JSON must be an object of fields, got "
                f"{type(data).__name__}"
            )
        return cls.from_dict(data)
