"""Declarative capability descriptions for methods and compute backends.

The dispatch layer used to carry three ad-hoc booleans on every method spec
(``accepts_backend``, ``accepts_workers``, ``needs_adjacency``) that each
call site re-interpreted by hand.  This module replaces them with one
declarative :class:`Capabilities` record per method — what task shapes the
method can execute, which backends it can honour, whether it can reuse a
prebuilt transition operator — plus a :class:`BackendTraits` record per
compute backend describing the operator it materialises.  The planner
(:mod:`repro.engine.planner`) reads *only* these declarations when it picks
an execution plan, so adding a method or backend never means touching the
planner: register a capability record and the cost model covers it.

Methods register their capabilities through their
:class:`~repro.api.MethodSpec` (``repro.api.register_method``); backends
register :class:`BackendTraits` here via :func:`register_backend_traits`
(the two built-in backends are pre-registered).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..exceptions import ConfigurationError

__all__ = [
    "ALL_TASKS",
    "BACKEND_TRAITS",
    "BackendTraits",
    "Capabilities",
    "MATRIX_TASKS",
    "backend_traits",
    "register_backend_traits",
]

ALL_TASKS = ("all_pairs", "top_k", "pair", "serve")
"""Every task shape the engine can plan: the dense all-pairs solve, the
batched top-k series evaluation, a single-pair score, and the online
serving tier."""


@dataclass(frozen=True)
class Capabilities:
    """What one SimRank method declares it can do.

    Attributes
    ----------
    tasks:
        Task shapes the method can execute.  Every method handles
        ``"all_pairs"``; only the matrix-form series path also answers
        ``"top_k"`` / ``"pair"`` / ``"serve"`` (those tasks evaluate the
        backend's batched series, never a per-vertex iteration).
    backends:
        Compute backends the method can honour.  Per-vertex methods iterate
        Python adjacency structures and declare ``("dense",)`` — their
        arithmetic is backend-independent.
    accepts_backend:
        Whether the solver takes a ``backend=`` keyword.  Methods that do
        accept *any* registered backend (that is the plug-in point); only
        backend-agnostic methods pin the declared set above.
    accepts_workers:
        Whether the solver takes a ``workers=`` keyword for process-parallel
        execution.
    needs_adjacency:
        Whether the solver iterates per-vertex adjacency (and therefore
        needs a full :class:`~repro.graph.digraph.DiGraph`); an
        :class:`~repro.graph.edgelist.EdgeListGraph` input is upgraded via
        ``to_digraph()`` before dispatch.
    default_backend:
        Backend used when the caller passes ``backend=None`` (``None`` for
        backend-agnostic methods).
    shares_transition:
        Whether the solver takes a ``transition=`` keyword and can reuse a
        transition operator the engine session already materialised,
        instead of rebuilding it from the graph.
    uses_partial_sums:
        Whether the method's cost is governed by the paper's partial-sum
        sharing model (Eq. 7) — the planner then scales its estimate by the
        measured sharing ratio instead of the raw operator size.
    """

    tasks: frozenset[str] = frozenset({"all_pairs"})
    backends: tuple[str, ...] = ("dense",)
    accepts_backend: bool = False
    accepts_workers: bool = False
    needs_adjacency: bool = True
    default_backend: Optional[str] = None
    shares_transition: bool = False
    uses_partial_sums: bool = False

    def __post_init__(self) -> None:
        unknown = set(self.tasks) - set(ALL_TASKS)
        if unknown:
            raise ConfigurationError(
                f"unknown task shapes {sorted(unknown)}; "
                f"valid: {', '.join(ALL_TASKS)}"
            )

    def admits(
        self,
        task: str,
        backend: Optional[str] = None,
        workers: int = 1,
    ) -> bool:
        """Whether this capability record admits executing ``task``.

        ``backend``/``workers`` refine the check: a named backend must be
        honourable (declared, or the method forwards arbitrary backends)
        and a parallel worker count needs ``accepts_workers``.
        """
        if task not in self.tasks:
            return False
        if backend is not None and not self.accepts_backend:
            if backend not in self.backends:
                return False
        if workers > 1 and not self.accepts_workers:
            return False
        return True


@dataclass(frozen=True)
class BackendTraits:
    """Cost-model description of one compute backend's transition operator.

    Attributes
    ----------
    name:
        Registered backend name (``"dense"``, ``"sparse"``).
    dense_operator:
        Whether the materialised operator stores all ``n²`` entries
        (``True``) or only the ``m`` edge entries (``False``).  Drives both
        the multiply-add and the memory estimates.
    bytes_per_entry:
        Bytes per stored operator entry (CSR carries index overhead on top
        of the 8-byte value).
    deterministic_parallel:
        Whether the sharded parallel execution is bit-identical to serial
        for this backend (CSR products are; BLAS blocking is not).
    series_kernel:
        Name of the calibratable kernel that prices one series
        multiply-add on this backend (a key of
        :data:`repro.engine.cost_model.STATIC_WEIGHTS`, probed by
        :mod:`repro.calibrate.probes`).  ``None`` falls back by operator
        shape — ``"dense_gemm"`` for dense operators, ``"sparse_matvec"``
        otherwise; third-party backends that register their own kernel
        should also register a calibration probe for it.
    """

    name: str
    dense_operator: bool
    bytes_per_entry: int = 8
    deterministic_parallel: bool = True
    series_kernel: Optional[str] = None

    def resolved_series_kernel(self) -> str:
        """The kernel the cost model prices this backend's series with."""
        if self.series_kernel:
            return self.series_kernel
        return "dense_gemm" if self.dense_operator else "sparse_matvec"

    def operator_nnz(self, num_vertices: int, num_edges: int) -> int:
        """Stored operator entries for an ``n``-vertex, ``m``-edge graph."""
        if self.dense_operator:
            return num_vertices * num_vertices
        return num_edges

    def operator_bytes(self, num_vertices: int, num_edges: int) -> int:
        """Approximate resident bytes of the materialised operator."""
        return self.operator_nnz(num_vertices, num_edges) * self.bytes_per_entry


BACKEND_TRAITS: dict[str, BackendTraits] = {}
"""Registry of backend trait records, keyed by backend name."""


def register_backend_traits(traits: BackendTraits) -> BackendTraits:
    """Register ``traits`` (replacing any same-named record)."""
    BACKEND_TRAITS[traits.name] = traits
    return traits


def backend_traits(name: str) -> BackendTraits:
    """Resolve a backend's traits.

    Backends registered through :func:`repro.core.backends.register_backend`
    without a matching traits record (third-party plug-ins) fall back to
    conservative sparse-like traits — the planner can still price and run
    them; registering real traits via :func:`register_backend_traits` only
    sharpens the estimates.
    """
    try:
        return BACKEND_TRAITS[name]
    except KeyError:
        return BackendTraits(
            name=name, dense_operator=False, deterministic_parallel=False
        )


# The two built-in backends.  The sparse CSR operator stores one float plus
# one int32 column index per edge (plus the amortised indptr) — ~12 bytes an
# entry; the dense operator is a plain float64 ndarray.
register_backend_traits(
    BackendTraits(
        name="sparse",
        dense_operator=False,
        bytes_per_entry=12,
        deterministic_parallel=True,
        series_kernel="sparse_matvec",
    )
)
register_backend_traits(
    BackendTraits(
        name="dense",
        dense_operator=True,
        bytes_per_entry=8,
        deterministic_parallel=False,
        series_kernel="dense_gemm",
    )
)

MATRIX_TASKS = frozenset(ALL_TASKS)
"""The matrix-form series path answers every task shape (used by the
method registry in :mod:`repro.api`)."""
