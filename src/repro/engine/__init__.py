"""The session-level engine API: config, capabilities, planner, facade.

This package is the primary public surface for computing and serving
SimRank::

    from repro import Engine, EngineConfig

    engine = Engine(graph, EngineConfig(damping=0.6, workers=4))
    print(engine.explain().render())     # what would run, and why
    scores = engine.all_pairs()          # plans, builds, computes
    rankings = engine.top_k([0, 5])      # reuses the shared operator
    service = engine.serve(warm=True)    # serving tier on shared artifacts

Submodules: :mod:`.config` (the one validated knob record),
:mod:`.capabilities` (declarative method/backend capability registry),
:mod:`.cost_model` (the pluggable constant provider — static weights or a
measured per-host calibration profile), :mod:`.planner` (the deterministic
cost-based plan/explain layer) and :mod:`.engine` (the :class:`Engine`
facade, with per-session plan caching).

The legacy free functions (``repro.simrank``, ``repro.simrank_top_k``) are
one-shot wrappers over an ephemeral engine and return bit-identical
answers.
"""

from .capabilities import (
    ALL_TASKS,
    BACKEND_TRAITS,
    BackendTraits,
    Capabilities,
    backend_traits,
    register_backend_traits,
)
from .config import EngineConfig
from .cost_model import (
    STATIC_WEIGHTS,
    CostModel,
    ProfiledCostModel,
    StaticCostModel,
    resolve_cost_model,
)
from .planner import ExecutionPlan, GraphStats, TaskPlan, plan_all, plan_task

__all__ = [
    "ALL_TASKS",
    "ArtifactCounters",
    "BACKEND_TRAITS",
    "BackendTraits",
    "Capabilities",
    "CostModel",
    "Engine",
    "EngineConfig",
    "ExecutionPlan",
    "GraphStats",
    "ProfiledCostModel",
    "STATIC_WEIGHTS",
    "StaticCostModel",
    "TaskPlan",
    "backend_traits",
    "plan_all",
    "plan_task",
    "register_backend_traits",
    "resolve_cost_model",
]


def __getattr__(name: str):
    # `Engine` imports `repro.api` (which itself imports this package for
    # the Capabilities registry); loading it lazily keeps the import graph
    # acyclic while `from repro.engine import Engine` keeps working.
    if name in ("Engine", "ArtifactCounters"):
        from . import engine as _engine

        return getattr(_engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
