"""The cost-based query planner behind :meth:`Engine.explain`.

Given one :class:`GraphStats` snapshot and one
:class:`~repro.engine.config.EngineConfig`, :func:`plan_task` picks — for a
task shape from :data:`~repro.engine.capabilities.ALL_TASKS` — the method,
compute backend, worker count and (for serving) answer tier, together with
estimated multiply-adds and resident bytes.  The decision procedure is a
pure function of ``(stats, config, cost model)``: no wall-clock, no
randomness, no global state — calling it twice always yields the same plan,
which is what lets ``explain()`` output double as a reproducible experiment
artifact.

The cost model is the paper's own accounting:

* matrix-form paths cost ``2 · K · nnz(W)`` multiply-adds per dense column
  (``nnz`` from the backend's :class:`~repro.engine.capabilities
  .BackendTraits` — ``m`` for CSR, ``n²`` dense), weighted by the
  backend's series kernel;
* per-vertex paths are priced by the partial-sum model of Eq. 7
  (:mod:`repro.core.transition_cost`): the measured *sharing ratio* —
  mean ``TC_{I(a) → I(b)} / (|I(b)| − 1)`` over sampled in-neighbour sets —
  scales the ``O(K · d · n²)`` baseline exactly the way the paper's
  OIP-SR analysis predicts;
* serving tiers are priced by their offline build cost and per-query cost,
  and the planner degrades index → approx → compute as the configured
  ``memory_budget`` tightens (the approximate tier is only admitted when
  the configured fingerprints satisfy ``max_error``).

Every *constant* in that accounting — the dense BLAS discount, the Python
loop penalty, the per-kernel rates — is read from a pluggable
:class:`~repro.engine.cost_model.CostModel` provider, not from module
globals.  The default :class:`~repro.engine.cost_model.StaticCostModel`
reproduces the historical hard-coded weights bit for bit; a measured
per-host profile (``repro-simrank calibrate``) swaps honest numbers in and
additionally turns op counts into wall-clock estimates.  Each plan records
the constants it was priced with and their provenance (measured vs
assumed), and every choice is recorded in the plan's ``reasons`` so
``explain()`` shows *why*, not just *what*.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field
from typing import Optional

import numpy as np

from ..core.transition_cost import scratch_cost, transition_cost
from ..exceptions import ConfigurationError
from ..parallel import resolve_workers
from .capabilities import ALL_TASKS, backend_traits
from .config import AUTO_METHOD, EngineConfig
from .cost_model import (
    DENSE_BLAS_SPEEDUP,
    PYTHON_LOOP_PENALTY,
    CostModel,
    resolve_cost_model,
)

__all__ = [
    "DENSE_BLAS_SPEEDUP",
    "PYTHON_LOOP_PENALTY",
    "ExecutionPlan",
    "GraphStats",
    "TaskPlan",
    "plan_task",
    "plan_all",
]

SHARING_SAMPLE = 64
"""In-neighbour sets sampled when measuring the sharing ratio."""


@dataclass(frozen=True)
class GraphStats:
    """The graph statistics the planner decides from.

    ``sharing_ratio`` is the measured mean of the paper's Eq. 7 cost ratio
    ``TC_{I(a) → I(b)} / (|I(b)| − 1)`` over sampled pairs of in-neighbour
    sets — 1.0 means sharing never beats recomputing, values near 0 mean
    the partial-sum reuse the paper exploits is almost free.  It is
    ``None`` when the graph's adjacency is not materialised (edge-list
    inputs), in which case per-vertex costs fall back to the unshared
    baseline.
    """

    num_vertices: int
    num_edges: int
    sharing_ratio: Optional[float] = None

    @property
    def density(self) -> float:
        """Edge density ``m / n²`` (0 for the empty graph)."""
        if self.num_vertices == 0:
            return 0.0
        return self.num_edges / float(self.num_vertices**2)

    @property
    def mean_degree(self) -> float:
        """Mean (in-)degree ``m / n``."""
        if self.num_vertices == 0:
            return 0.0
        return self.num_edges / float(self.num_vertices)

    @classmethod
    def from_graph(cls, graph, sample: int = SHARING_SAMPLE) -> "GraphStats":
        """Measure ``graph``; samples the sharing ratio when adjacency exists.

        The sample walks at most ``sample`` evenly spaced vertices in id
        order — exactly ``min(sample, n)`` probes, never more — and prices
        deriving each in-neighbour set from the previous one (Eq. 7)
        against recomputing it: deterministic for a given graph,
        ``O(sample · d)`` work.
        """
        n = int(graph.num_vertices)
        m = int(graph.num_edges)
        sharing: Optional[float] = None
        if hasattr(graph, "in_neighbors") and n > 1 and m > 0:
            probes = min(max(sample, 1), n)
            # ``(i · n) // probes`` is strictly increasing for probes <= n,
            # so this visits exactly ``probes`` distinct vertices (the old
            # ``range(0, n, n // sample)`` walk could visit nearly 2x
            # ``sample`` when n was not a multiple of it).
            vertices = [(index * n) // probes for index in range(probes)]
            shared_cost = 0
            scratch = 0
            previous: Optional[frozenset[int]] = None
            for vertex in vertices:
                current = frozenset(graph.in_neighbors(vertex))
                if previous is not None and current:
                    shared_cost += transition_cost(previous, current)
                    scratch += max(scratch_cost(current), 1)
                previous = current
            if scratch:
                sharing = min(shared_cost / scratch, 1.0)
        return cls(num_vertices=n, num_edges=m, sharing_ratio=sharing)

    def to_dict(self) -> dict[str, object]:
        return {
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "density": self.density,
            "mean_degree": self.mean_degree,
            "sharing_ratio": self.sharing_ratio,
        }


@dataclass(frozen=True)
class TaskPlan:
    """The planner's decision for one task shape, with its cost estimates.

    ``estimated_ops`` prices the task itself (for ``serve``: the offline
    artifact build); ``estimated_query_ops`` prices one online query where
    that distinction matters.  ``estimated_bytes`` is the peak resident
    working set, operator included.  ``estimated_seconds`` is the
    wall-clock estimate when every kernel pricing the task carries a
    measured rate (``None`` under the static model — assumed weights have
    no time base).  ``constants`` records each cost-model constant the
    plan was priced with as ``(kernel, weight, provenance)`` where
    provenance is ``"measured"`` or ``"assumed"``.
    """

    task: str
    method: str
    backend: Optional[str]
    workers: int
    iterations: int
    tier: Optional[str] = None
    estimated_ops: int = 0
    estimated_query_ops: int = 0
    estimated_bytes: int = 0
    estimated_seconds: Optional[float] = None
    constants: tuple[tuple[str, float, str], ...] = ()
    reasons: tuple[str, ...] = field(default_factory=tuple)

    def to_dict(self) -> dict[str, object]:
        """A plain, JSON-serialisable summary of the decision."""
        data = asdict(self)
        data["reasons"] = list(self.reasons)
        data["constants"] = [
            {"kernel": kernel, "weight": weight, "provenance": provenance}
            for kernel, weight, provenance in self.constants
        ]
        return data


@dataclass(frozen=True)
class ExecutionPlan:
    """Plans for every task shape of one engine session, as one artifact.

    ``cost_source``/``cost_digest`` identify the cost model the plans were
    priced with (``"static"`` for the built-in weights, the profile's
    layer and content digest otherwise) — the same digest the engine's
    plan cache keys on and experiment reports record.
    """

    graph: GraphStats
    config: EngineConfig
    tasks: tuple[TaskPlan, ...]
    cost_source: str = "static"
    cost_digest: str = "static"

    def task(self, name: str) -> TaskPlan:
        """The plan for one task shape; unknown names raise."""
        for plan in self.tasks:
            if plan.task == name:
                return plan
        raise ConfigurationError(
            f"no plan for task {name!r}; planned: "
            f"{', '.join(plan.task for plan in self.tasks)}"
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "graph": self.graph.to_dict(),
            "config": self.config.to_dict(),
            "cost_model": {
                "source": self.cost_source,
                "digest": self.cost_digest,
            },
            "tasks": [plan.to_dict() for plan in self.tasks],
        }

    def render(self) -> str:
        """A human-readable multi-line rendering (the CLI's output)."""
        stats = self.graph
        lines = [
            f"graph: n={stats.num_vertices} m={stats.num_edges} "
            f"density={stats.density:.2e}"
            + (
                f" sharing_ratio={stats.sharing_ratio:.3f}"
                if stats.sharing_ratio is not None
                else ""
            ),
            f"config: method={self.config.method} backend="
            f"{self.config.backend or 'auto'} damping={self.config.damping} "
            f"workers={self.config.workers}",
            f"cost model: {self.cost_source}"
            + (
                " (built-in weights, all constants assumed)"
                if self.cost_digest == "static"
                else f" (measured profile {self.cost_digest})"
            ),
        ]
        for plan in self.tasks:
            tier = f" tier={plan.tier}" if plan.tier else ""
            seconds = (
                f" secs~{plan.estimated_seconds:.2e}"
                if plan.estimated_seconds is not None
                else ""
            )
            lines.append(
                f"  {plan.task:>9}: method={plan.method} "
                f"backend={plan.backend or '-'} workers={plan.workers} "
                f"K={plan.iterations}{tier} "
                f"ops~{plan.estimated_ops:.2e} bytes~{plan.estimated_bytes:.2e}"
                f"{seconds}"
            )
            if plan.constants:
                lines.append(
                    "             constants: "
                    + ", ".join(
                        f"{kernel}={weight:.4g} ({provenance})"
                        for kernel, weight, provenance in plan.constants
                    )
                )
            for reason in plan.reasons:
                lines.append(f"             - {reason}")
        return "\n".join(lines)


# ---------------------------------------------------------------------- #
# Cost model
# ---------------------------------------------------------------------- #
def _series_ops(traits, stats: GraphStats, iterations: int, columns: int) -> int:
    """Multiply-adds for ``columns`` dense columns through ``2K`` products."""
    nnz = traits.operator_nnz(stats.num_vertices, stats.num_edges)
    return int(2 * iterations * nnz * columns)


def _weighted_series_ops(
    traits, stats, iterations, columns, model: CostModel
) -> float:
    """Series ops weighted by the backend's series-kernel constant."""
    ops = _series_ops(traits, stats, iterations, columns)
    return ops * model.weight(traits.resolved_series_kernel())


def _per_vertex_ops(
    capabilities, stats: GraphStats, iterations: int
) -> tuple[int, Optional[str]]:
    """Partial-sum cost of one per-vertex all-pairs solve (Eq. 7 pricing)."""
    baseline = iterations * stats.num_edges * stats.num_vertices  # K·d·n²
    if capabilities.uses_partial_sums and stats.sharing_ratio is not None:
        shared = int(baseline * stats.sharing_ratio)
        return (
            shared,
            f"partial-sum sharing prices {shared:.2e} of the "
            f"{baseline:.2e} unshared additions "
            f"(sharing_ratio={stats.sharing_ratio:.3f})",
        )
    return int(baseline), None


def _auto_backend(
    stats: GraphStats,
    config: EngineConfig,
    iterations: int,
    columns: int,
    model: CostModel,
) -> tuple[str, list[str], set[str]]:
    """Pick dense vs sparse for a matrix-form task by weighted cost."""
    reasons: list[str] = []
    sparse = backend_traits("sparse")
    dense = backend_traits("dense")
    sparse_cost = _weighted_series_ops(sparse, stats, iterations, columns, model)
    dense_cost = _weighted_series_ops(dense, stats, iterations, columns, model)
    choice = "dense" if dense_cost < sparse_cost else "sparse"
    if config.memory_budget is not None and choice == "dense":
        operator = dense.operator_bytes(stats.num_vertices, stats.num_edges)
        if operator > config.memory_budget:
            reasons.append(
                f"dense operator ({operator:.2e} B) exceeds the "
                f"memory budget ({config.memory_budget:.2e} B); "
                "falling back to sparse"
            )
            choice = "sparse"
    dense_kernel = dense.resolved_series_kernel()
    reasons.append(
        f"auto backend: sparse ~{sparse_cost:.2e} weighted ops vs dense "
        f"~{dense_cost:.2e} (dense weight {model.weight(dense_kernel):.4g}x "
        f"[{model.provenance(dense_kernel)}], "
        f"density {stats.density:.2e}) -> {choice}"
    )
    return (
        choice,
        reasons,
        {sparse.resolved_series_kernel(), dense_kernel},
    )


def _resolve_method_and_backend(
    task: str,
    stats: GraphStats,
    config: EngineConfig,
    iterations: int,
    columns: int,
    model: CostModel,
) -> tuple[str, Optional[str], list[str], set[str]]:
    """Select (method, backend) for ``task``, honouring explicit config."""
    from ..api import METHODS, _resolve_backend, method_spec  # lazy: no cycle

    reasons: list[str] = []
    consulted: set[str] = set()
    if task == "all_pairs":
        if config.method != AUTO_METHOD:
            spec = method_spec(config.method)
            reasons.append(f"method {spec.name!r} pinned by config")
        else:
            spec = METHODS["matrix"]
            loop_kernel = "python_vertex_step"
            consulted.add(loop_kernel)
            reasons.append(
                "auto method: matrix-form series (vectorised; per-vertex "
                f"solvers carry a ~{model.weight(loop_kernel):g}x "
                f"Python-loop constant [{model.provenance(loop_kernel)}])"
            )
            if stats.sharing_ratio is not None and stats.sharing_ratio < 1.0:
                reasons.append(
                    "partial-sum sharing would save "
                    f"{(1.0 - stats.sharing_ratio) * 100:.0f}% of per-vertex "
                    "additions (select method='oip-sr' explicitly to use it)"
                )
    else:
        # Top-k / pair / serve always run the shared series path — the only
        # registered method whose capabilities admit those task shapes.
        spec = next(
            METHODS[name]
            for name in sorted(METHODS)
            if task in METHODS[name].capabilities.tasks
        )
        if config.method not in (AUTO_METHOD, spec.name):
            reasons.append(
                f"task {task!r} always runs the {spec.name!r} series path "
                f"(config method {config.method!r} only governs all-pairs)"
            )
    if not spec.capabilities.admits(task):
        raise ConfigurationError(
            f"method {spec.name!r} cannot execute task {task!r}; "
            f"it supports: {', '.join(sorted(spec.capabilities.tasks))}"
        )

    if config.backend is not None:
        backend = _resolve_backend(spec, config.backend)
        reasons.append(f"backend {backend!r} pinned by config")
    elif spec.capabilities.accepts_backend:
        backend, auto_reasons, auto_consulted = _auto_backend(
            stats, config, iterations, columns, model
        )
        reasons.extend(auto_reasons)
        consulted |= auto_consulted
    else:
        backend = spec.capabilities.default_backend
        if backend is None:
            reasons.append(
                f"method {spec.name!r} is backend-agnostic (Python adjacency)"
            )
    return spec.name, backend, reasons, consulted


def _resolve_workers_for(
    task: str, method: str, config: EngineConfig
) -> tuple[int, list[str]]:
    """Worker count for ``task``; serial-only methods reject parallelism."""
    from ..api import METHODS  # lazy: no cycle

    reasons: list[str] = []
    resolved = resolve_workers(config.workers)
    if resolved <= 1:
        return 1, reasons
    if task == "pair":
        reasons.append("single-row task; pool startup would dominate — serial")
        return 1, reasons
    capabilities = METHODS[method].capabilities
    if task == "all_pairs" and not capabilities.accepts_workers:
        raise ConfigurationError(
            f"method {method!r} does not support parallel execution; "
            "methods accepting workers: "
            + ", ".join(
                sorted(
                    name
                    for name, spec in METHODS.items()
                    if spec.capabilities.accepts_workers
                )
            )
        )
    reasons.append(
        f"{resolved} workers requested; sharded execution is "
        "bit-identical to serial on the sparse backend"
    )
    return resolved, reasons


def _estimated_seconds(
    breakdown: dict[str, float], model: CostModel
) -> Optional[float]:
    """Wall-clock estimate for a kernel-ops breakdown, if fully measured.

    ``None`` when any pricing kernel lacks a measured rate — a partially
    assumed sum would look like a measurement without being one.
    """
    if not breakdown:
        return None
    total = 0.0
    for kernel, ops in breakdown.items():
        rate = model.seconds_per_op(kernel)
        if rate is None:
            return None
        total += ops * rate
    return total


def plan_task(
    task: str,
    stats: GraphStats,
    config: EngineConfig,
    queries: int = 1,
    cost_model: Optional[CostModel] = None,
) -> TaskPlan:
    """Plan one task shape — a pure function of ``(stats, config, model)``.

    ``queries`` sizes the batch for ``top_k`` cost estimates (it never
    changes the selected method/backend, only the estimate).
    ``cost_model`` defaults to the layered resolution of
    :func:`~repro.engine.cost_model.resolve_cost_model` — pass one
    explicitly to pin it (the engine passes its session model so cached
    plans and their digests stay coherent).
    """
    if task not in ALL_TASKS:
        raise ConfigurationError(
            f"unknown task {task!r}; valid: {', '.join(ALL_TASKS)}"
        )
    from ..api import METHODS  # lazy: no cycle

    model = cost_model if cost_model is not None else resolve_cost_model(config)
    iterations = config.resolved_iterations()
    n = stats.num_vertices
    columns = {"all_pairs": n, "top_k": max(queries, 1), "pair": 1}.get(task, n)
    method, backend, reasons, consulted = _resolve_method_and_backend(
        task, stats, config, iterations, columns, model
    )
    workers, worker_reasons = _resolve_workers_for(task, method, config)
    reasons.extend(worker_reasons)
    capabilities = METHODS[method].capabilities

    tier: Optional[str] = None
    query_ops = 0
    breakdown: dict[str, float] = {}  # kernel -> raw ops priced by it
    if backend is not None:
        traits = backend_traits(backend)
        operator_bytes = traits.operator_bytes(n, stats.num_edges)
        nnz = traits.operator_nnz(n, stats.num_edges)
        series_kernel = traits.resolved_series_kernel()
    else:
        traits = None
        operator_bytes = 0
        nnz = stats.num_edges
        series_kernel = "sparse_matvec"

    if task == "all_pairs":
        if capabilities.shares_transition and traits is not None:
            ops = _series_ops(traits, stats, iterations, n)
            breakdown[series_kernel] = ops
            peak = operator_bytes + 2 * n * n * 8
        else:
            raw_ops, sharing_reason = _per_vertex_ops(
                capabilities, stats, iterations
            )
            breakdown["python_vertex_step"] = raw_ops
            ops = int(raw_ops * model.weight("python_vertex_step"))
            peak = n * n * 8 + n * 8
            if sharing_reason is not None:
                reasons.append(sharing_reason)
    elif task == "top_k":
        ops = _series_ops(traits, stats, iterations, columns)
        breakdown[series_kernel] = ops
        query_ops = _series_ops(traits, stats, iterations, 1)
        peak = operator_bytes + (iterations + 1) * n * columns * 8
    elif task == "pair":
        ops = _series_ops(traits, stats, iterations, 1)
        breakdown[series_kernel] = ops
        query_ops = ops
        peak = operator_bytes + (iterations + 1) * n * 8
    else:  # serve
        tier, ops, query_ops, peak, tier_reasons, tier_breakdown = (
            _plan_serving_tier(
                stats, config, iterations, nnz, operator_bytes, series_kernel
            )
        )
        breakdown.update(tier_breakdown)
        reasons.extend(tier_reasons)
        reasons.extend(_serving_slo_reasons(config))
        if config.catalog_path is not None:
            reasons.append(
                f"durable catalog at {config.catalog_path}: build_index "
                "commits there; serve() warm-starts memory-mapped from a "
                "matching committed catalog instead of rebuilding"
            )

    priced = sorted(set(breakdown) | consulted)
    return TaskPlan(
        task=task,
        method=method,
        backend=backend,
        workers=workers,
        iterations=iterations,
        tier=tier,
        estimated_ops=int(ops),
        estimated_query_ops=int(query_ops),
        estimated_bytes=int(peak),
        estimated_seconds=_estimated_seconds(breakdown, model),
        constants=tuple(model.constant(kernel) for kernel in priced),
        reasons=tuple(reasons),
    )


def _serving_slo_reasons(config: EngineConfig) -> list[str]:
    """Describe the serving plan's runtime behaviour under load.

    The static tier choice above is the *offline* decision; these lines
    report the *online* half — admission control and SLO-driven
    degradation — so ``explain()`` shows the full serving plan the network
    front-end (:mod:`repro.serve`) will execute.
    """
    reasons = [
        "admission control: max_inflight="
        f"{config.max_inflight}, queue_depth={config.queue_depth} "
        "(arrivals beyond both are shed with a typed error)"
    ]
    if config.slo_p99_ms is None:
        reasons.append(
            "no serving SLO configured; tier routing is static "
            "(set slo_p99_ms to enable live p99-driven degradation)"
        )
    elif config.shed_policy == "degrade":
        reasons.append(
            f"serving SLO: p99 <= {config.slo_p99_ms:g} ms, "
            "shed_policy=degrade — a live p99 breach routes undecided "
            "queries to the approx tier until p99 recovers"
        )
    else:
        reasons.append(
            f"serving SLO: p99 <= {config.slo_p99_ms:g} ms, "
            "shed_policy=shed — overload sheds instead of degrading; "
            "answers stay exact"
        )
    return reasons


def _plan_serving_tier(
    stats: GraphStats,
    config: EngineConfig,
    iterations: int,
    nnz: int,
    operator_bytes: int,
    series_kernel: str,
) -> tuple[str, int, int, int, list[str], dict[str, float]]:
    """Pick the serving tier the session should precompute toward.

    The returned breakdown maps cost-model kernels to the raw ops of the
    tier's offline build, so the caller can price it in wall-clock under a
    measured profile.
    """
    n = stats.num_vertices
    reasons: list[str] = []
    # Exact truncated index: one batched series sweep offline, a CSR row
    # lookup per query online.
    index_bytes = n * min(config.index_k, max(n - 1, 1)) * 16
    index_build = 2 * iterations * nnz * n
    # Monte-Carlo fingerprints: the sampling sweep offline, a coincidence
    # scan per query online.
    walk_length = (
        int(math.ceil(math.log(1e-3) / math.log(config.damping)))
        if 0.0 < config.damping < 1.0
        else iterations
    )
    fingerprint_bytes = config.approx_walks * n * (walk_length + 1) * 8
    fingerprint_build = config.approx_walks * n * walk_length
    standard_error = float(
        config.damping ** (config.approx_head + 1)
        / np.sqrt(config.approx_walks)
    )

    budget = config.memory_budget
    if budget is None or index_bytes + operator_bytes <= budget:
        reasons.append(
            f"exact index fits ({index_bytes + operator_bytes:.2e} B"
            + ("" if budget is None else f" <= budget {budget:.2e} B")
            + "); serving tier: index"
        )
        return (
            "index",
            index_build,
            2 * config.index_k,  # row lookup + (-score, id) truncation
            index_bytes + operator_bytes,
            reasons,
            {series_kernel: index_build, "topk_truncate": 2 * config.index_k},
        )
    reasons.append(
        f"exact index ({index_bytes + operator_bytes:.2e} B) exceeds the "
        f"memory budget ({budget:.2e} B)"
    )
    if (
        config.max_error is not None
        and standard_error <= config.max_error
        and fingerprint_bytes + operator_bytes <= budget
    ):
        reasons.append(
            f"fingerprints fit ({fingerprint_bytes + operator_bytes:.2e} B) "
            f"and satisfy max_error ({standard_error:.2e} <= "
            f"{config.max_error:.2e}); serving tier: approx"
        )
        return (
            "approx",
            fingerprint_build,
            config.approx_walks * walk_length,
            fingerprint_bytes + operator_bytes,
            reasons,
            {"fingerprint_sample": fingerprint_build},
        )
    if config.max_error is not None and standard_error > config.max_error:
        reasons.append(
            f"fingerprint standard error {standard_error:.2e} exceeds "
            f"max_error {config.max_error:.2e}; approximate tier not admitted"
        )
    reasons.append("serving tier: compute (on-demand series, micro-batched)")
    return (
        "compute",
        0,
        2 * iterations * nnz,
        operator_bytes + (iterations + 1) * n * config.max_batch * 8,
        reasons,
        {},
    )


def plan_all(
    stats: GraphStats,
    config: EngineConfig,
    queries: int = 1,
    cost_model: Optional[CostModel] = None,
) -> ExecutionPlan:
    """Plan every task shape of a session as one inspectable artifact."""
    model = cost_model if cost_model is not None else resolve_cost_model(config)
    return ExecutionPlan(
        graph=stats,
        config=config,
        tasks=tuple(
            plan_task(task, stats, config, queries=queries, cost_model=model)
            for task in ALL_TASKS
        ),
        cost_source=model.source,
        cost_digest=model.digest(),
    )
