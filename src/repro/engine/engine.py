"""The session facade: one ``Engine`` per graph, shared artifacts across tasks.

Before this module, every entry point rebuilt its own state: ``simrank``
materialised a transition operator, ``simrank_top_k`` another,
``build_index`` a third, and ``SimilarityService`` a fourth — four copies of
the same CSR matrix for one graph.  :class:`Engine` owns that state once per
session: the transition operator, the worker pool, the truncated serving
index and the Monte-Carlo fingerprints are all built lazily on first use and
reused by every task (``all_pairs`` / ``top_k`` / ``pair`` / ``serve``),
with build counts exposed on :attr:`Engine.counters` so reuse is a testable
invariant, not a hope.  Mutations (:meth:`add_edge` / :meth:`remove_edge`)
bump the session version and invalidate every cached artifact coherently —
the same version-stamp discipline the serving layer already uses.

Task execution goes through the cost-based planner
(:mod:`repro.engine.planner`): :meth:`explain` returns the chosen plan —
method, backend, workers, serving tier, estimated cost — as an inspectable
dataclass before any work runs.

The legacy free functions (:func:`repro.simrank`,
:func:`repro.simrank_top_k`) are thin wrappers over an ephemeral one-shot
engine, so both surfaces return bit-identical answers.

Examples
--------
>>> from repro import Engine, EngineConfig
>>> from repro.graph.generators import web_graph
>>> engine = Engine(web_graph(num_pages=200, num_hosts=8, seed=1))
>>> result = engine.all_pairs()
>>> rankings = engine.top_k([0, 5], k=5)     # reuses the operator
>>> print(engine.explain().task("top_k").backend)
sparse
"""

from __future__ import annotations

import inspect
import threading
import warnings
from typing import Hashable, Optional, Sequence, Union

import numpy as np

from ..api import METHODS, _resolve_backend
from ..baselines.topk import RankedList
from ..core.backends import get_backend
from ..core.instrumentation import Instrumentation
from ..core.result import SimRankResult
from ..core.similarity_store import SimilarityStore, ranked_entries
from ..exceptions import ConfigurationError
from ..graph.edgelist import edge_list_from_pairs
from ..obs import MetricsRegistry
from ..parallel import ParallelExecutor, resolve_workers
from ..service.fingerprints import FingerprintIndex
from ..service.index import build_index as _build_index
from ..service.service import SimilarityService
from .config import EngineConfig
from .cost_model import CostModel, resolve_cost_model
from .planner import ExecutionPlan, GraphStats, TaskPlan, plan_all, plan_task

__all__ = ["ArtifactCounters", "Engine"]


class ArtifactCounters:
    """How many times each shared artifact was (re)built this session.

    The whole point of the session facade is that these stay at 1 until a
    mutation invalidates the artifacts — the parity suite asserts exactly
    that, so artifact reuse is enforced, not assumed.

    Backed by a :class:`~repro.obs.MetricsRegistry` (one
    ``engine_<field>`` counter per field, including the plan-cache
    counters ``engine_plan_computes`` / ``engine_plan_cache_hits``); the
    historical attributes stay readable and assignable with bit-identical
    values, so the engine's ``+= 1`` sites work unchanged.
    """

    _FIELDS = (
        "transition_builds",
        "executor_builds",
        "index_builds",
        "fingerprint_builds",
        "plans",
        "plan_computes",
        "plan_cache_hits",
        "catalog_opens",
    )

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = {
            name: self.registry.counter(f"engine_{name}") for name in self._FIELDS
        }

    def as_dict(self) -> dict[str, int]:
        with self.registry.lock:  # one consistent read of all eight
            return {name: int(self._counters[name].value) for name in self._FIELDS}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ArtifactCounters):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"ArtifactCounters({inner})"


def _artifact_counter_property(name: str) -> property:
    def getter(self: ArtifactCounters) -> int:
        return int(self._counters[name].value)

    def setter(self: ArtifactCounters, value: int) -> None:
        self._counters[name].set(int(value))

    return property(getter, setter)


for _field_name in ArtifactCounters._FIELDS:
    setattr(ArtifactCounters, _field_name, _artifact_counter_property(_field_name))
del _field_name


class Engine:
    """A SimRank session over one graph: plan, compute, serve — share state.

    Parameters
    ----------
    graph:
        A :class:`~repro.graph.digraph.DiGraph` or
        :class:`~repro.graph.edgelist.EdgeListGraph`.  The vertex set is
        fixed for the session; edges may be mutated through
        :meth:`add_edge` / :meth:`remove_edge`.
    config:
        An :class:`~repro.engine.config.EngineConfig` (or a plain dict of
        its fields).  ``None`` uses the defaults — auto method/backend
        selection, serial execution.

    The engine is a context manager; :meth:`close` retires the shared
    worker pool.
    """

    def __init__(
        self,
        graph,
        config: Union[EngineConfig, dict, None] = None,
    ) -> None:
        if config is None:
            config = EngineConfig()
        elif isinstance(config, dict):
            config = EngineConfig.from_dict(config)
        elif not isinstance(config, EngineConfig):
            raise ConfigurationError(
                "config must be an EngineConfig, a dict of its fields, or "
                f"None; got {type(config).__name__}"
            )
        self.config = config
        self._config_digest = config.digest()
        self.counters = ArtifactCounters()
        self._graph = graph
        self._lock = threading.RLock()
        self._version = 0
        # Edge overlay, materialised lazily on the first mutation; until
        # then the session serves the caller's graph object untouched.
        self._edges: Optional[set[tuple[int, int]]] = None
        self._compute_graph = None
        self._stats: Optional[GraphStats] = None
        self._transition = None
        self._transition_backend: Optional[str] = None
        self._executor: Optional[ParallelExecutor] = None
        self._index: Optional[SimilarityStore] = None
        self._fingerprints: Optional[FingerprintIndex] = None
        self._cost_model: Optional[CostModel] = None
        # Resolved plans, keyed by (task, queries, config digest, model
        # digest) — the GraphStats component is implicit: _invalidate()
        # clears the cache whenever the stats can change.
        self._plan_cache: dict[tuple, Union[TaskPlan, ExecutionPlan]] = {}

    # ------------------------------------------------------------------ #
    # Session state
    # ------------------------------------------------------------------ #
    @property
    def version(self) -> int:
        """Session version; bumped by every effective edge mutation."""
        with self._lock:
            return self._version

    @property
    def num_vertices(self) -> int:
        return int(self._graph.num_vertices)

    @property
    def num_edges(self) -> int:
        """Edge count at the current version.

        Before any mutation this is the underlying graph's own count
        (which, for :class:`~repro.graph.edgelist.EdgeListGraph` inputs,
        may include duplicate edge samples); once the session has mutated,
        it is the overlay's count of *distinct* directed edges.
        """
        with self._lock:
            if self._edges is not None:
                return len(self._edges)
        return int(self._graph.num_edges)

    def current_graph(self):
        """The session's graph at the current version.

        Until the first mutation this is the caller's graph object; after
        a mutation it is an :class:`~repro.graph.edgelist.EdgeListGraph`
        rebuilt from the edge overlay through the shared
        :func:`~repro.graph.edgelist.edge_list_from_pairs` helper — the
        same convention :meth:`SimilarityService.current_graph` uses.
        Labels keep resolving through the *original* graph on every query
        surface (the vertex set is fixed; only edges mutate).
        """
        with self._lock:
            if self._edges is None:
                return self._graph
            if self._compute_graph is None:
                self._compute_graph = edge_list_from_pairs(
                    self.num_vertices,
                    self._edges,
                    name=getattr(self._graph, "name", ""),
                )
            return self._compute_graph

    def stats(self) -> GraphStats:
        """Graph statistics at the current version (cached)."""
        with self._lock:
            if self._stats is None:
                self._stats = GraphStats.from_graph(self.current_graph())
            return self._stats

    # ------------------------------------------------------------------ #
    # Planning
    # ------------------------------------------------------------------ #
    def cost_model(self) -> CostModel:
        """The session's cost model, resolved once and reused.

        Resolution (config path > ``REPRO_COST_PROFILE`` > user profile >
        static) happens on the first plan and is pinned for the session,
        so every plan — and the plan cache keyed on the model's digest —
        prices against the same constants.
        """
        with self._lock:
            if self._cost_model is None:
                self._cost_model = resolve_cost_model(self.config)
            return self._cost_model

    def _plan(self, task: str, queries: int = 1) -> TaskPlan:
        """The (memoized) plan for one task shape at the current version.

        Every dispatch path prices through here; the cache means a steady
        session re-prices nothing (``counters.plan_computes`` stays flat
        while ``plan_cache_hits`` grows) and a mutation re-prices
        everything exactly once (``_invalidate`` clears the cache).
        """
        model = self.cost_model()
        key = (task, queries, self._config_digest, model.digest())
        with self._lock:
            cached = self._plan_cache.get(key)
            if cached is not None:
                self.counters.plan_cache_hits += 1
                return cached
        plan = plan_task(
            task, self.stats(), self.config, queries=queries, cost_model=model
        )
        with self._lock:
            self.counters.plan_computes += 1
            self._plan_cache[key] = plan
        return plan

    def _plan_full(self, queries: int = 1) -> ExecutionPlan:
        """The memoized all-tasks plan (the ``explain()`` artifact)."""
        model = self.cost_model()
        key = ("__all__", queries, self._config_digest, model.digest())
        with self._lock:
            cached = self._plan_cache.get(key)
            if cached is not None:
                self.counters.plan_cache_hits += 1
                return cached
        plan = plan_all(
            self.stats(), self.config, queries=queries, cost_model=model
        )
        with self._lock:
            self.counters.plan_computes += 1
            self._plan_cache[key] = plan
        return plan

    def plan(self, task: str, queries: int = 1) -> TaskPlan:
        """The execution plan for one task shape (see :mod:`.planner`)."""
        self.counters.plans += 1
        return self._plan(task, queries=queries)

    def explain(
        self, task: Optional[str] = None, queries: int = 1
    ) -> Union[ExecutionPlan, TaskPlan]:
        """Explain what the engine would run, without running it.

        With ``task=None`` returns an :class:`~.planner.ExecutionPlan`
        covering every task shape (all-pairs, top-k, pair, serve); with a
        task name, that shape's :class:`~.planner.TaskPlan`.  Either way
        the result names the selected method, backend, worker count,
        serving tier and estimated cost, and serialises via ``to_dict()``.
        """
        self.counters.plans += 1
        if task is not None:
            return self._plan(task, queries=queries)
        return self._plan_full(queries=queries)

    # ------------------------------------------------------------------ #
    # Shared artifacts
    # ------------------------------------------------------------------ #
    def _series_backend_name(self) -> str:
        """The backend the shared series artifacts are built on."""
        spec = METHODS["matrix"]
        if self.config.backend is not None:
            return _resolve_backend(spec, self.config.backend)
        return self._plan("top_k").backend

    def transition(self):
        """The session's transition operator, built once and reused.

        Every task shape — the matrix all-pairs solve, batched top-k rows,
        single-pair scores, the serving index, the fingerprint head — runs
        against this one operator; :attr:`counters` records the build.
        """
        backend = self._series_backend_name()
        with self._lock:
            if self._transition is None or self._transition_backend != backend:
                engine = get_backend(backend)
                self._transition = engine.transition(self.current_graph())
                self._transition_backend = backend
                self.counters.transition_builds += 1
            return self._transition

    def _shared_executor(self, workers: int) -> Optional[ParallelExecutor]:
        """The session worker pool, bound to the shared operator.

        Returns ``None`` when the session runs serially.  The pool is
        created once per (version, backend) and reused by every parallel
        task whose series parameters match the session config.
        """
        if workers <= 1:
            return None
        transition = self.transition()
        with self._lock:
            if self._executor is None:
                self._executor = ParallelExecutor(
                    transition,
                    damping=self.config.damping,
                    iterations=self.config.resolved_iterations(),
                    backend=self._transition_backend,
                    workers=workers,
                )
                self.counters.executor_builds += 1
            return self._executor

    def build_index(self, index_k: Optional[int] = None) -> SimilarityStore:
        """Build (or rebuild) the session's truncated serving index.

        Runs the batched series sweep against the shared transition
        operator — the operator is *not* rebuilt — honouring the config's
        ``workers`` and ``memory_budget``.  The index is retained as a
        session artifact and attached to any service :meth:`serve` wires
        (``top_k``/``pair`` always evaluate the series directly; the index
        serves the *service's* tiered path).  With ``catalog_path``
        configured the built index is additionally committed as a durable
        catalog there (recommitting over any previous one), so a later
        session — or :meth:`serve` after a restart — opens it from disk
        instead of rebuilding.
        """
        plan = self._plan("serve")
        index = _build_index(
            self.current_graph(),
            index_k=self.config.index_k if index_k is None else index_k,
            damping=self.config.damping,
            iterations=self.config.resolved_iterations(),
            backend=plan.backend,
            workers=plan.workers,
            memory_budget=self.config.memory_budget,
            transition=self.transition(),
        )
        if self.config.catalog_path is not None:
            # Committed while the store still references the *structural*
            # build graph, so the catalog fingerprint describes the edges
            # the scores were computed from.
            from ..catalog import IndexCatalog

            IndexCatalog.create(self.config.catalog_path, index, overwrite=True)
        # Serve labels through the session's original graph, not the
        # integer edge overlay (same convention as the service's rebuild).
        index.graph = self._graph
        with self._lock:
            self._index = index
            self.counters.index_builds += 1
        return index

    def build_fingerprints(self) -> FingerprintIndex:
        """Sample the session's Monte-Carlo fingerprint index.

        Uses the config's ``approx_walks`` / ``approx_head`` /
        ``approx_seed`` and the shared transition operator for the exact
        series head.
        """
        fingerprints = FingerprintIndex.build(
            self.current_graph(),
            damping=self.config.damping,
            num_walks=self.config.approx_walks,
            head_iterations=self.config.approx_head,
            backend=self._series_backend_name(),
            seed=self.config.approx_seed,
            transition=(
                self.transition() if self.config.approx_head > 0 else None
            ),
        )
        with self._lock:
            self._fingerprints = fingerprints
            self.counters.fingerprint_builds += 1
        return fingerprints

    @property
    def index(self) -> Optional[SimilarityStore]:
        """The session's serving index, if built."""
        return self._index

    @property
    def fingerprints(self) -> Optional[FingerprintIndex]:
        """The session's fingerprint index, if built."""
        return self._fingerprints

    # ------------------------------------------------------------------ #
    # Tasks
    # ------------------------------------------------------------------ #
    def all_pairs(self, **params) -> SimRankResult:
        """All-pairs SimRank under the planned method/backend.

        ``params`` are forwarded verbatim to the selected solver
        (``damping``, ``iterations``, ``diagonal``, ``num_walks``, ...),
        exactly like :func:`repro.simrank` forwards its kwargs — the two
        surfaces are bit-identical.  When the solver can share the
        session's transition operator it receives it instead of rebuilding
        one.
        """
        plan = self._plan("all_pairs")
        spec = METHODS[plan.method]
        capabilities = spec.capabilities
        graph = self.current_graph()
        if capabilities.needs_adjacency and hasattr(graph, "to_digraph"):
            graph = graph.to_digraph()
        if capabilities.accepts_backend and plan.backend is not None:
            params.setdefault("backend", plan.backend)
        if capabilities.accepts_workers and self.config.workers is not None:
            params.setdefault("workers", self.config.workers)
        # Config-driven series parameters, injected only where the solver's
        # signature takes them (per-vertex baselines differ) and only when
        # the caller did not override them — explicit kwargs always win,
        # which is what keeps the one-shot wrappers bit-identical.
        accepted = inspect.signature(spec.solver).parameters
        if "damping" in accepted:
            params.setdefault("damping", self.config.damping)
        if "iterations" not in params and "accuracy" not in params:
            if self.config.iterations is not None and "iterations" in accepted:
                params["iterations"] = self.config.iterations
            elif "accuracy" in accepted:
                params["accuracy"] = self.config.accuracy
        if (
            capabilities.shares_transition
            and params.get("backend") == self._series_backend_name()
        ):
            params.setdefault("transition", self.transition())
            # The pool is only worth attaching when the *effective* worker
            # count (a call-level override wins over the plan) is parallel
            # and the solver would run it with the session's series
            # parameters baked into it.
            effective = resolve_workers(params.get("workers"))
            if effective > 1 and self._series_params_match(params):
                params.setdefault(
                    "executor", self._shared_executor(effective)
                )
        return spec.solver(graph, **params)

    def _series_params_match(self, params: dict) -> bool:
        """Whether ``params`` agree with the session's series parameters.

        The shared worker pool bakes damping/iterations in at creation;
        a task overriding either must spawn its own pool instead.
        """
        damping = params.get("damping", self.config.damping)
        iterations = params.get("iterations")
        if iterations is None:
            iterations = self.config.resolved_iterations()
        return (
            float(damping) == self.config.damping
            and int(iterations) == self.config.resolved_iterations()
        )

    def top_k(
        self,
        queries,
        k: int = 10,
        include_self: bool = False,
        instrumentation: Optional[Instrumentation] = None,
    ) -> list[RankedList]:
        """Batched top-``k`` rankings via the shared series evaluation.

        Matches :func:`repro.simrank_top_k` bit for bit — one transition
        operator and one Horner series evaluation serve the whole batch,
        ``O(K · n · |queries|)`` memory, scores in the matrix-form
        convention with ``(-score, id)`` tie-breaking.

        **Short rankings.**  A ranking holds at most
        ``n - (0 if include_self else 1)`` entries: on a graph with at
        most ``k`` (other) vertices the list is simply shorter than ``k``
        — vertices outside the query's reach still appear, carrying score
        0.0 in vertex-id order, but no entry is ever invented beyond the
        vertex set.
        """
        if isinstance(queries, (str, bytes)) or not isinstance(
            queries, (Sequence, np.ndarray)
        ):
            queries = [queries]
        plan = self._plan("top_k", queries=len(queries))
        # Labels always resolve through the session's original graph — the
        # vertex set is fixed; a mutated session's integer edge overlay is
        # a compute representation, never the query surface.
        indices = np.array(
            [self._graph.index_of(query) for query in queries], dtype=np.int64
        )
        transition = self.transition()
        iterations = self.config.resolved_iterations()
        executor = self._shared_executor(plan.workers)
        if executor is not None:
            rows = executor.similarity_rows(
                indices, instrumentation=instrumentation
            )
        else:
            rows = get_backend(self._transition_backend).similarity_rows(
                transition,
                indices,
                damping=self.config.damping,
                iterations=iterations,
                instrumentation=instrumentation,
            )
        rankings: list[RankedList] = []
        for position, query in enumerate(queries):
            entries = ranked_entries(
                rows[position],
                k,
                exclude=None if include_self else int(indices[position]),
            )
            rankings.append(
                RankedList(
                    query=query,
                    entries=tuple(
                        (self._graph.label_of(column), score)
                        for column, score in entries
                    ),
                )
            )
        return rankings

    def pair(self, first: Hashable, second: Hashable) -> float:
        """The similarity score ``s(first, second)``.

        Series convention (matching :meth:`top_k` rows): self-similarity
        is exactly 1.  One series evaluation against the shared operator;
        no ``n × n`` matrix.
        """
        source = self._graph.index_of(first)
        target = self._graph.index_of(second)
        if source == target:
            return 1.0
        self._plan("pair")
        transition = self.transition()
        row = get_backend(self._transition_backend).similarity_rows(
            transition,
            np.array([source], dtype=np.int64),
            damping=self.config.damping,
            iterations=self.config.resolved_iterations(),
        )[0]
        return float(row[target])

    def serve(self, k: int = 10, warm: bool = False) -> SimilarityService:
        """A :class:`~repro.service.service.SimilarityService` on shared state.

        The service receives the session's transition operator (so its
        compute tier never rebuilds it), the serving index and the
        fingerprint set *if the session has built them* — call
        :meth:`build_index` / :meth:`build_fingerprints` first, or pass
        ``warm=True`` to build whatever the serving plan selects before
        wiring the service.  Answers are bit-identical to a standalone
        ``SimilarityService`` over the same graph and artifacts.

        With ``catalog_path`` configured and a committed catalog on disk,
        an unmutated session with no in-memory index serves straight from
        the catalog: the base opens memory-mapped (no rebuild, no full
        materialisation) and the service resumes the catalog's logged
        state — including any edge mutations a previous serving process
        durably logged.  A catalog that does not match the session's graph
        or configuration is *not* served; it warns and falls back to the
        ordinary path (the explicit ``load_index``/``SimilarityService``
        route raises instead — an opportunistic warm start must never
        break a legitimate session).
        """
        plan = self._plan("serve")
        if (
            self.config.catalog_path is not None
            and self._index is None
            and self._version == 0
        ):
            from ..catalog import IndexCatalog

            if IndexCatalog.is_catalog(self.config.catalog_path):
                try:
                    catalog = IndexCatalog.open(self.config.catalog_path)
                    catalog.validate(
                        self.current_graph(),
                        damping=self.config.damping,
                        iterations=self.config.resolved_iterations(),
                        index_k=self.config.index_k,
                    )
                except ConfigurationError as error:
                    warnings.warn(
                        f"ignoring catalog at {self.config.catalog_path}: "
                        f"{error}",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                else:
                    with self._lock:
                        self.counters.catalog_opens += 1
                    # No shared transition handed over: the catalog start
                    # is the cheap path (mmap open, no operator build),
                    # and the catalog's replayed edge log may supersede
                    # this session's graph anyway.
                    return SimilarityService(
                        self.current_graph(),
                        k=k,
                        damping=self.config.damping,
                        iterations=self.config.resolved_iterations(),
                        backend=plan.backend,
                        cache_size=self.config.cache_size,
                        max_batch=self.config.max_batch,
                        workers=plan.workers,
                        fingerprints=self._fingerprints,
                        label_graph=self._graph,
                        catalog=catalog,
                        plan_digest=self._config_digest,
                    )
        if warm:
            if plan.tier == "index" and self._index is None:
                self.build_index()
            elif plan.tier == "approx" and self._fingerprints is None:
                self.build_fingerprints()
        return SimilarityService(
            self.current_graph(),
            self._index,
            k=k,
            damping=self.config.damping,
            iterations=self.config.resolved_iterations(),
            backend=plan.backend,
            cache_size=self.config.cache_size,
            max_batch=self.config.max_batch,
            workers=plan.workers,
            fingerprints=self._fingerprints,
            transition=self.transition(),
            label_graph=self._graph,
            plan_digest=self._config_digest,
        )

    def server(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        k: int = 10,
        warm: bool = False,
    ):
        """A network :class:`~repro.serve.server.SimilarityServer` over
        :meth:`serve`.

        The server speaks the length-prefixed JSON protocol of
        :mod:`repro.serve`, coalesces concurrent requests into the
        service's micro-batcher, and takes its admission-control and
        SLO-degradation settings (``max_inflight``, ``queue_depth``,
        ``slo_p99_ms``, ``shed_policy``) from this session's
        :class:`EngineConfig` — the same settings ``explain("serve")``
        reports.  ``port=0`` binds an ephemeral port (read it from
        ``server.port`` after ``start()``).
        """
        # Imported lazily: repro.serve sits above the engine layer, and a
        # module-level import would be a cycle.
        from ..serve.server import SimilarityServer

        return SimilarityServer(
            self.serve(k=k, warm=warm),
            host=host,
            port=port,
            max_inflight=self.config.max_inflight,
            queue_depth=self.config.queue_depth,
            slo_p99_ms=self.config.slo_p99_ms,
            shed_policy=self.config.shed_policy,
        )

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add_edge(self, source: Hashable, target: Hashable) -> bool:
        """Insert a directed edge; returns ``False`` when already present."""
        edge = (self._graph.index_of(source), self._graph.index_of(target))
        with self._lock:
            edges = self._materialise_edges()
            if edge in edges:
                return False
            edges.add(edge)
            self._invalidate()
            return True

    def remove_edge(self, source: Hashable, target: Hashable) -> bool:
        """Delete a directed edge; returns ``False`` when absent."""
        edge = (self._graph.index_of(source), self._graph.index_of(target))
        with self._lock:
            edges = self._materialise_edges()
            if edge not in edges:
                return False
            edges.remove(edge)
            self._invalidate()
            return True

    def _materialise_edges(self) -> set[tuple[int, int]]:
        # Caller holds the lock.
        if self._edges is None:
            self._edges = {
                (int(source), int(target))
                for source, target in self._graph.edges()
            }
        return self._edges

    def _invalidate(self) -> None:
        """Version-stamp invalidation of every cached artifact.

        Caller holds the lock.  SimRank is a global measure — one edge
        perturbs every score — so invalidation is total: operator, pool,
        index, fingerprints and cached statistics all go; they rebuild
        lazily (and the counters record that they did).
        """
        self._version += 1
        self._compute_graph = None
        self._stats = None
        self._plan_cache.clear()
        self._transition = None
        self._transition_backend = None
        self._index = None
        self._fingerprints = None
        if self._executor is not None:
            self._executor.close(wait=False)
            self._executor = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Retire the session worker pool, if any (idempotent)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.close()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        built = [
            name
            for name, artifact in (
                ("transition", self._transition),
                ("executor", self._executor),
                ("index", self._index),
                ("fingerprints", self._fingerprints),
            )
            if artifact is not None
        ]
        return (
            f"<Engine n={self.num_vertices} m={self.num_edges} "
            f"version={self.version} method={self.config.method} "
            f"artifacts=[{', '.join(built) or 'none'}]>"
        )
