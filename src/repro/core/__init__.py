"""The paper's contribution: OIP-SR, OIP-DSR and their supporting machinery."""

from .backends import (
    SimRankBackend,
    TransitionOperator,
    available_backends,
    get_backend,
    register_backend,
)
from .convergence import ConvergenceTrace, iterations_to_accuracy, trace_convergence
from .diff_simrank import differential_simrank, euler_differential_simrank
from .dmst_reduce import build_sharing_plan, dmst_reduce
from .instrumentation import (
    Instrumentation,
    MemoryTracker,
    OperationCounter,
    PhaseTimer,
)
from .iteration_bounds import (
    conventional_iterations,
    differential_iterations_exact,
    differential_iterations_lambert,
    differential_iterations_log,
    iteration_bound_table,
    log_estimate_valid_threshold,
)
from .neighbor_index import InNeighborIndex, generate_candidate_edges
from .oip_dsr import oip_dsr
from .oip_sr import oip_sr
from .partial_sums import (
    outer_partial_sum,
    partial_sum,
    partial_sum_vector,
    update_outer_partial_sum,
    update_partial_sum_vector,
)
from .partition import describe_partitions, format_dendrogram, set_name
from .plans import ROOT, PartitionBlock, PlanNode, SharingPlan
from .result import SimRankResult
from .sharing_engine import SharingEngine
from .similarity_store import SimilarityStore
from .transition_cost import (
    TransitionEdge,
    is_sharing_profitable,
    scratch_cost,
    split_delta,
    symmetric_difference_size,
    transition_cost,
)

__all__ = [
    "SimRankBackend",
    "TransitionOperator",
    "available_backends",
    "get_backend",
    "register_backend",
    "ConvergenceTrace",
    "iterations_to_accuracy",
    "trace_convergence",
    "differential_simrank",
    "euler_differential_simrank",
    "build_sharing_plan",
    "dmst_reduce",
    "Instrumentation",
    "MemoryTracker",
    "OperationCounter",
    "PhaseTimer",
    "conventional_iterations",
    "differential_iterations_exact",
    "differential_iterations_lambert",
    "differential_iterations_log",
    "iteration_bound_table",
    "log_estimate_valid_threshold",
    "InNeighborIndex",
    "generate_candidate_edges",
    "oip_dsr",
    "oip_sr",
    "outer_partial_sum",
    "partial_sum",
    "partial_sum_vector",
    "update_outer_partial_sum",
    "update_partial_sum_vector",
    "describe_partitions",
    "format_dendrogram",
    "set_name",
    "ROOT",
    "PartitionBlock",
    "PlanNode",
    "SharingPlan",
    "SimRankResult",
    "SharingEngine",
    "SimilarityStore",
    "TransitionEdge",
    "is_sharing_profitable",
    "scratch_cost",
    "split_delta",
    "symmetric_difference_size",
    "transition_cost",
]
