"""Differential SimRank — the exponential-sum model of Section IV (matrix form).

Definition 2 of the paper defines a revised SimRank ``Ŝ`` through the matrix
differential equation ``dŜ(t)/dt = Q · Ŝ(t) · Qᵀ`` with
``Ŝ(0) = e^{-C}·I``; its closed form is the exponential sum

``Ŝ = e^{-C} Σ_{i≥0} (Cⁱ / i!) · Qⁱ (Qᵀ)ⁱ``   (Eq. 13)

computed iteratively (Eq. 15) as ``T_{k+1} = Q T_k Qᵀ`` and
``Ŝ_{k+1} = Ŝ_k + e^{-C}·C^{k+1}/(k+1)!·T_{k+1}``.  This module implements
that iteration directly with a sparse ``Q`` and dense iterates — the plain
"matrix" variant used as a reference; :mod:`repro.core.oip_dsr` combines the
same series with partial-sums sharing (the paper's OIP-DSR).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..graph.digraph import DiGraph
from ..graph.matrices import backward_transition_matrix
from ..numerics.norms import max_difference
from .convergence import ConvergenceTrace
from .instrumentation import Instrumentation
from .iteration_bounds import differential_iterations_exact
from .result import SimRankResult, validate_damping, validate_iterations

__all__ = ["differential_simrank", "euler_differential_simrank"]


def differential_simrank(
    graph: DiGraph,
    damping: float = 0.6,
    iterations: Optional[int] = None,
    accuracy: float = 1e-3,
    record_residuals: bool = False,
) -> SimRankResult:
    """Compute the differential SimRank ``Ŝ`` via the series iteration (Eq. 15).

    Parameters
    ----------
    graph:
        Input graph.
    damping:
        The damping factor ``C``.
    iterations:
        Number of series terms ``K'`` to accumulate beyond the initial one.
        When ``None`` it is derived from ``accuracy`` through the Prop. 7
        bound ``C^{K'+1}/(K'+1)! ≤ ε``.
    accuracy:
        Target accuracy used when ``iterations`` is ``None``.
    record_residuals:
        Store ``‖Ŝ_{k+1} − Ŝ_k‖_max`` per iteration in
        ``result.extra["residuals"]``.
    """
    damping = validate_damping(damping)
    if iterations is None:
        iterations = differential_iterations_exact(accuracy, damping)
    iterations = validate_iterations(iterations)

    instrumentation = Instrumentation()
    trace = ConvergenceTrace(model="differential", damping=damping)
    n = graph.num_vertices

    with instrumentation.timer.phase("share_sums"):
        transition = backward_transition_matrix(graph)
        transition_t = transition.T.tocsr()
        scale = math.exp(-damping)

        auxiliary = np.eye(n, dtype=np.float64)
        scores = scale * np.eye(n, dtype=np.float64)
        coefficient = scale
        for k in range(iterations):
            auxiliary = transition @ auxiliary @ transition_t
            if hasattr(auxiliary, "todense"):  # pragma: no cover - sparse corner
                auxiliary = np.asarray(auxiliary.todense())
            coefficient = coefficient * damping / (k + 1)
            previous = scores if record_residuals else None
            scores = scores + coefficient * auxiliary
            instrumentation.operations.add("series", n * n)
            if record_residuals and previous is not None:
                trace.record(max_difference(scores, previous))

    extra: dict[str, object] = {"accuracy": accuracy, "model": "differential"}
    if record_residuals:
        extra["residuals"] = list(trace.residuals)
    return SimRankResult(
        scores=scores,
        graph=graph,
        algorithm="diff-simrank-matrix",
        damping=damping,
        iterations=iterations,
        instrumentation=instrumentation,
        extra=extra,
    )


def euler_differential_simrank(
    graph: DiGraph,
    damping: float = 0.6,
    step_size: float = 0.05,
) -> SimRankResult:
    """Approximate ``Ŝ`` with the explicit Euler method the paper argues against.

    The paper notes that solving the differential equation with Euler steps
    ``Ŝ_{k+1} = Ŝ_k + h·Q Ŝ_k Qᵀ`` makes the accuracy hinge on the step size
    ``h``; this reference implementation exists so the benchmarks can show
    the series iteration (Eq. 15) reaching the same answer without tuning
    ``h``.
    """
    damping = validate_damping(damping)
    if step_size <= 0 or step_size > damping:
        raise ValueError("step_size must lie in (0, damping]")
    instrumentation = Instrumentation()
    n = graph.num_vertices
    with instrumentation.timer.phase("share_sums"):
        transition = backward_transition_matrix(graph)
        transition_t = transition.T.tocsr()
        num_steps = int(round(damping / step_size))
        scores = math.exp(-damping) * np.eye(n, dtype=np.float64)
        for _ in range(num_steps):
            increment = transition @ scores @ transition_t
            if hasattr(increment, "todense"):  # pragma: no cover
                increment = np.asarray(increment.todense())
            scores = scores + step_size * increment
            instrumentation.operations.add("euler", n * n)
    return SimRankResult(
        scores=scores,
        graph=graph,
        algorithm="diff-simrank-euler",
        damping=damping,
        iterations=num_steps,
        instrumentation=instrumentation,
        extra={"step_size": step_size},
    )
