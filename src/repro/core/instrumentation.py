"""Operation counting, phase timing and memory accounting for the solvers.

The paper's headline claims are *relative*: OIP-SR needs fewer additions than
psum-SR (``O(K d' n²)`` vs ``O(K d n²)``), spends its time in different
phases (Fig. 6b) and uses only ``O(n)`` intermediate memory (Fig. 6d).  A
pure-Python reproduction cannot match the absolute wall-clock of the authors'
C++ implementation, so every algorithm in this package reports three
complementary measurements through the classes below:

* :class:`OperationCounter` — scalar additions performed on similarity
  values, split by phase (inner partial sums, outer partial sums, naive
  accumulation), which is exactly the unit of the paper's complexity
  analysis;
* :class:`PhaseTimer` — wall-clock per named phase ("build_mst",
  "share_sums", ...), the split shown in Fig. 6b;
* :class:`MemoryTracker` — peak number of cached intermediate values
  (partial-sum vectors, outer partial sums, auxiliary matrices), the
  quantity plotted in Fig. 6d.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["OperationCounter", "PhaseTimer", "MemoryTracker", "Instrumentation"]


@dataclass
class OperationCounter:
    """Counts scalar additions on similarity values, keyed by category."""

    counts: dict[str, int] = field(default_factory=dict)

    def add(self, category: str, amount: int) -> None:
        """Record ``amount`` additions under ``category`` (no-op for 0)."""
        if amount:
            self.counts[category] = self.counts.get(category, 0) + int(amount)

    def total(self) -> int:
        """Total additions across all categories."""
        return sum(self.counts.values())

    def get(self, category: str) -> int:
        """Additions recorded under ``category`` (0 when absent)."""
        return self.counts.get(category, 0)

    def merge(self, other: "OperationCounter") -> None:
        """Fold ``other``'s counts into this counter."""
        for category, amount in other.counts.items():
            self.add(category, amount)

    def as_dict(self) -> dict[str, int]:
        """Return a copy of the per-category counts plus the total."""
        summary = dict(self.counts)
        summary["total"] = self.total()
        return summary


@dataclass
class PhaseTimer:
    """Accumulates wall-clock seconds per named phase."""

    seconds: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager timing one execution of phase ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed

    def total(self) -> float:
        """Total seconds across phases."""
        return sum(self.seconds.values())

    def get(self, name: str) -> float:
        """Seconds recorded for phase ``name`` (0.0 when absent)."""
        return self.seconds.get(name, 0.0)

    def share(self, name: str) -> float:
        """Fraction of total time spent in phase ``name`` (0 when untimed)."""
        total = self.total()
        if total <= 0.0:
            return 0.0
        return self.get(name) / total

    def as_dict(self) -> dict[str, float]:
        """Return a copy of the per-phase seconds plus the total."""
        summary = {name: round(value, 6) for name, value in self.seconds.items()}
        summary["total"] = round(self.total(), 6)
        return summary


@dataclass
class MemoryTracker:
    """Tracks the peak number of cached intermediate float values.

    The tracker is a simple high-water-mark counter: algorithms call
    :meth:`allocate` when they cache a partial-sum vector (or any other
    intermediate array) and :meth:`release` when they free it, mirroring the
    explicit ``free`` steps of Algorithm 1 / Procedure OP in the paper.
    """

    current_values: int = 0
    peak_values: int = 0
    bytes_per_value: int = 8

    def allocate(self, num_values: int) -> None:
        """Record that ``num_values`` intermediate floats are now cached."""
        self.current_values += int(num_values)
        if self.current_values > self.peak_values:
            self.peak_values = self.current_values

    def release(self, num_values: int) -> None:
        """Record that ``num_values`` cached floats have been freed."""
        self.current_values = max(0, self.current_values - int(num_values))

    @property
    def peak_bytes(self) -> int:
        """Peak cached intermediate memory in bytes."""
        return self.peak_values * self.bytes_per_value

    def as_dict(self) -> dict[str, int]:
        """Return the peak statistics as a dictionary."""
        return {
            "peak_values": self.peak_values,
            "peak_bytes": self.peak_bytes,
        }


@dataclass
class Instrumentation:
    """Bundle of the three measurement facilities handed to every solver."""

    operations: OperationCounter = field(default_factory=OperationCounter)
    timer: PhaseTimer = field(default_factory=PhaseTimer)
    memory: MemoryTracker = field(default_factory=MemoryTracker)

    def as_dict(self) -> dict[str, object]:
        """Return a nested dictionary of all measurements."""
        return {
            "operations": self.operations.as_dict(),
            "seconds": self.timer.as_dict(),
            "memory": self.memory.as_dict(),
        }
