"""The result object shared by every SimRank solver in the package.

All solvers — the paper's OIP-SR/OIP-DSR and every baseline — return a
:class:`SimRankResult` so benchmarks, tests and examples can treat them
uniformly: an ``n × n`` score matrix plus the metadata needed to reproduce
the paper's figures (iteration count, per-phase timings, addition counts,
peak intermediate memory).
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ConfigurationError
from ..graph.digraph import DiGraph
from .instrumentation import Instrumentation

__all__ = ["SimRankResult", "validate_damping", "validate_iterations"]


def validate_damping(damping: float) -> float:
    """Validate that the damping factor lies strictly inside ``(0, 1)``."""
    if not 0.0 < damping < 1.0:
        raise ConfigurationError(
            f"damping factor C must lie in (0, 1), got {damping}"
        )
    return float(damping)


def validate_iterations(iterations: int) -> int:
    """Validate that an iteration count is a non-negative integer."""
    if iterations < 0:
        raise ConfigurationError(f"iterations must be non-negative, got {iterations}")
    return int(iterations)


@dataclass
class SimRankResult:
    """Scores plus provenance for one SimRank computation.

    Attributes
    ----------
    scores:
        Dense ``n × n`` array; ``scores[a, b]`` is the similarity of vertices
        ``a`` and ``b``.
    graph:
        The graph the scores were computed on (used for label lookups).
    algorithm:
        Name of the producing algorithm (``"oip-sr"``, ``"psum-sr"``, ...).
    damping:
        The damping factor ``C``.
    iterations:
        Number of iterations actually performed.
    instrumentation:
        Operation counts, per-phase timings and memory high-water marks.
    extra:
        Free-form algorithm-specific metadata (e.g. the accuracy target that
        determined the iteration count, residual history, MST statistics).
    """

    scores: np.ndarray
    graph: DiGraph
    algorithm: str
    damping: float
    iterations: int
    instrumentation: Instrumentation = field(default_factory=Instrumentation)
    extra: dict[str, object] = field(default_factory=dict)

    def similarity(self, first: Hashable, second: Hashable) -> float:
        """Return ``s(first, second)``; arguments may be labels or vertex ids."""
        a = self.graph.index_of(first)
        b = self.graph.index_of(second)
        return float(self.scores[a, b])

    def similarity_row(self, vertex: Hashable) -> np.ndarray:
        """Return the full similarity row ``s(vertex, ·)`` as a copy."""
        return np.array(self.scores[self.graph.index_of(vertex), :])

    def top_k(
        self, vertex: Hashable, k: int = 10, include_self: bool = False
    ) -> list[tuple[Hashable, float]]:
        """Return the ``k`` most similar vertices to ``vertex``.

        Ties are broken by vertex id so the ordering is deterministic.
        """
        index = self.graph.index_of(vertex)
        row = self.scores[index, :]
        order = sorted(
            range(self.graph.num_vertices), key=lambda j: (-float(row[j]), j)
        )
        ranked: list[tuple[Hashable, float]] = []
        for candidate in order:
            if not include_self and candidate == index:
                continue
            ranked.append((self.graph.label_of(candidate), float(row[candidate])))
            if len(ranked) == k:
                break
        return ranked

    @property
    def elapsed_seconds(self) -> float:
        """Total wall-clock seconds across all timed phases."""
        return self.instrumentation.timer.total()

    @property
    def total_additions(self) -> int:
        """Total scalar additions counted across all phases."""
        return self.instrumentation.operations.total()

    @property
    def peak_intermediate_values(self) -> int:
        """Peak number of cached intermediate float values."""
        return self.instrumentation.memory.peak_values

    def summary(self) -> dict[str, object]:
        """Return a flat summary row suitable for benchmark tables."""
        return {
            "algorithm": self.algorithm,
            "n": self.graph.num_vertices,
            "m": self.graph.num_edges,
            "damping": self.damping,
            "iterations": self.iterations,
            "seconds": round(self.elapsed_seconds, 6),
            "additions": self.total_additions,
            "peak_intermediate_values": self.peak_intermediate_values,
        }
