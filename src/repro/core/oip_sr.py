"""OIP-SR — SimRank with inner and outer partial-sums sharing (Algorithm 1).

This is the paper's first contribution: conventional SimRank iterations
(Eq. 2) executed over the sharing plan produced by ``DMST-Reduce``, so that

* the partial sum of an in-neighbour set is derived from its tree parent's
  cached partial sum via a symmetric-difference update (inner sharing,
  Prop. 3), and
* the outer sums over target in-neighbour sets are derived along the same
  tree (outer sharing, Prop. 4),

which lowers the per-iteration cost from ``O(d n²)`` (psum-SR) to
``O(d' n²)`` with ``d'`` governed by the in-neighbour-set overlap.

Reachable through the unified dispatch entry point as
``repro.simrank(graph, method="oip-sr", ...)``; the per-vertex sharing
arithmetic is backend-agnostic, so the dispatch layer treats it as a
``dense``-only method.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import ConfigurationError
from ..graph.digraph import DiGraph
from .convergence import ConvergenceTrace
from .dmst_reduce import dmst_reduce
from .instrumentation import Instrumentation
from .iteration_bounds import conventional_iterations
from .result import SimRankResult, validate_damping, validate_iterations
from .sharing_engine import SharingEngine
from ..numerics.norms import max_difference

__all__ = ["oip_sr"]


def oip_sr(
    graph: DiGraph,
    damping: float = 0.6,
    iterations: Optional[int] = None,
    accuracy: float = 1e-3,
    plan=None,
    candidate_strategy: str = "common-neighbor",
    max_candidates_per_set: int = 16,
    threshold: float = 0.0,
    record_residuals: bool = False,
) -> SimRankResult:
    """Compute all-pairs SimRank with partial-sums sharing (OIP-SR).

    Parameters
    ----------
    graph:
        Input graph.
    damping:
        The damping factor ``C`` (the paper's experiments default to 0.6).
    iterations:
        Number of iterations ``K``.  When ``None`` it is derived from
        ``accuracy`` as ``K = ⌈log_C ε⌉`` (the paper's guarantee).
    accuracy:
        Target accuracy ``ε`` used when ``iterations`` is ``None``; also
        recorded in the result metadata.
    plan:
        A pre-built :class:`~repro.core.plans.SharingPlan`.  Passing one
        skips the ``DMST-Reduce`` phase, which is how the benchmarks measure
        the "share sums" phase in isolation (Fig. 6b).
    candidate_strategy, max_candidates_per_set:
        Forwarded to :func:`~repro.core.dmst_reduce.dmst_reduce` when the
        plan is built here.
    threshold:
        Threshold-sieving value ``δ`` (Lizorkin et al.'s third optimisation,
        which composes with partial-sums sharing unchanged): scores below the
        threshold are clamped to zero after every iteration.  0 disables
        sieving and keeps the computation exact.
    record_residuals:
        When ``True``, the max-norm difference between successive iterates
        is stored in ``result.extra["residuals"]`` (used by Fig. 6e).

    Returns
    -------
    SimRankResult
        Scores following the iterative-form convention (diagonal pinned to
        1), plus instrumentation and the plan summary in ``extra``.
    """
    damping = validate_damping(damping)
    if iterations is None:
        iterations = conventional_iterations(accuracy, damping)
    iterations = validate_iterations(iterations)

    instrumentation = Instrumentation()
    if plan is None:
        plan = dmst_reduce(
            graph,
            candidate_strategy=candidate_strategy,
            max_candidates_per_set=max_candidates_per_set,
            instrumentation=instrumentation,
        )

    engine = SharingEngine(graph, plan, instrumentation=instrumentation)
    trace = ConvergenceTrace(model="conventional", damping=damping)

    if threshold < 0.0:
        raise ConfigurationError(f"threshold must be non-negative, got {threshold}")

    scores = engine.initial_scores()
    with instrumentation.timer.phase("share_sums"):
        for _ in range(iterations):
            updated = engine.iterate(scores, factor=damping, pin_diagonal=True)
            if threshold > 0.0:
                updated[updated < threshold] = 0.0
                np.fill_diagonal(updated, 1.0)
            if record_residuals:
                trace.record(max_difference(updated, scores))
            scores = updated

    extra: dict[str, object] = {
        "accuracy": accuracy,
        "threshold": threshold,
        "plan": plan.summary(),
        "additions_per_iteration": engine.additions_per_iteration(),
    }
    if record_residuals:
        extra["residuals"] = list(trace.residuals)
    return SimRankResult(
        scores=scores,
        graph=graph,
        algorithm="oip-sr",
        damping=damping,
        iterations=iterations,
        instrumentation=instrumentation,
        extra=extra,
    )
