"""OIP-DSR — differential SimRank computed with partial-sums sharing.

The paper observes (end of Section IV) that the auxiliary recursion of the
differential model,

``[T_{k+1}]_{(a,b)} = (1 / (|I(a)|·|I(b)|)) Σ_{j∈I(b)} Σ_{i∈I(a)} [T_k]_{(i,j)}``,

has exactly the shape of the conventional SimRank update (Eq. 2) minus the
damping factor, so the whole inner/outer partial-sums sharing machinery of
Section III applies unchanged.  OIP-DSR therefore runs the shared-sums
engine with ``factor = 1`` and no diagonal pinning to advance ``T_k``, and
accumulates the exponential series
``Ŝ_{k+1} = Ŝ_k + e^{-C}·C^{k+1}/(k+1)!·T_{k+1}`` on the side.

Because the series converges at an exponential (rather than geometric) rate,
OIP-DSR reaches a target accuracy in far fewer iterations than OIP-SR —
that is the 5× further speed-up reported in the paper's experiments.
"""

from __future__ import annotations

import math
from typing import Optional

from ..graph.digraph import DiGraph
from ..numerics.norms import max_difference
from .convergence import ConvergenceTrace
from .dmst_reduce import dmst_reduce
from .instrumentation import Instrumentation
from .iteration_bounds import differential_iterations_exact
from .result import SimRankResult, validate_damping, validate_iterations
from .sharing_engine import SharingEngine

__all__ = ["oip_dsr"]


def oip_dsr(
    graph: DiGraph,
    damping: float = 0.6,
    iterations: Optional[int] = None,
    accuracy: float = 1e-3,
    plan=None,
    candidate_strategy: str = "common-neighbor",
    max_candidates_per_set: int = 16,
    record_residuals: bool = False,
) -> SimRankResult:
    """Compute differential SimRank with partial-sums sharing (OIP-DSR).

    Parameters mirror :func:`~repro.core.oip_sr.oip_sr`; the only differences
    are the model (exponential series instead of the damped fixed point) and
    the iteration-count rule (the Prop. 7 bound ``C^{K'+1}/(K'+1)! ≤ ε``
    instead of ``⌈log_C ε⌉``).

    Returns
    -------
    SimRankResult
        Scores of the differential model ``Ŝ``.  Note the diagonal is *not*
        pinned to 1 (it equals ``e^{-C}·Σ Cⁱ/i!·[Qⁱ(Qᵀ)ⁱ]_{aa}``); rankings of
        distinct vertices are what the model preserves (Fig. 6g/6h).
    """
    damping = validate_damping(damping)
    if iterations is None:
        iterations = differential_iterations_exact(accuracy, damping)
    iterations = validate_iterations(iterations)

    instrumentation = Instrumentation()
    if plan is None:
        plan = dmst_reduce(
            graph,
            candidate_strategy=candidate_strategy,
            max_candidates_per_set=max_candidates_per_set,
            instrumentation=instrumentation,
        )

    engine = SharingEngine(graph, plan, instrumentation=instrumentation)
    trace = ConvergenceTrace(model="differential", damping=damping)
    scale = math.exp(-damping)

    with instrumentation.timer.phase("share_sums"):
        auxiliary = engine.initial_scores()  # T_0 = I
        scores = scale * engine.initial_scores()  # S_hat_0 = e^{-C} I
        # Note on memory accounting: like the paper's Fig. 6d we track only
        # the *intermediate* caches (partial sums, outer sums); the n x n
        # iterates themselves are the output representation and are excluded
        # for every algorithm alike.
        coefficient = scale
        for k in range(iterations):
            auxiliary = engine.iterate(auxiliary, factor=1.0, pin_diagonal=False)
            coefficient = coefficient * damping / (k + 1)
            previous = scores if record_residuals else None
            scores = scores + coefficient * auxiliary
            instrumentation.operations.add(
                "series", graph.num_vertices * graph.num_vertices
            )
            if record_residuals and previous is not None:
                trace.record(max_difference(scores, previous))

    extra: dict[str, object] = {
        "accuracy": accuracy,
        "plan": plan.summary(),
        "additions_per_iteration": engine.additions_per_iteration(),
        "model": "differential",
    }
    if record_residuals:
        extra["residuals"] = list(trace.residuals)
    return SimRankResult(
        scores=scores,
        graph=graph,
        algorithm="oip-dsr",
        damping=damping,
        iterations=iterations,
        instrumentation=instrumentation,
        extra=extra,
    )
