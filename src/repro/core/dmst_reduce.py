"""``DMST-Reduce``: build the transition-cost graph and extract the sharing tree.

This is the paper's procedure of the same name (Section III-C):

1. collect the non-empty in-neighbour sets of the graph (we additionally
   de-duplicate identical sets — see
   :class:`~repro.core.neighbor_index.InNeighborIndex`);
2. build a weighted digraph ``G*`` whose vertices are those sets plus a root
   ``∅``, with edge weights given by the transition cost of Eq. 7;
3. compute a directed minimum spanning tree (arborescence) of ``G*`` rooted
   at ``∅`` with Chu-Liu/Edmonds;
4. turn the tree into a :class:`~repro.core.plans.SharingPlan`: a traversal
   order plus, for every set, either a "from scratch" instruction or the
   symmetric-difference delta against its tree parent.
"""

from __future__ import annotations

from typing import Optional

from ..graph.digraph import DiGraph
from ..mst.edmonds import minimum_spanning_arborescence
from .instrumentation import Instrumentation
from .neighbor_index import InNeighborIndex, generate_candidate_edges
from .plans import ROOT, PlanNode, SharingPlan
from .transition_cost import is_sharing_profitable, split_delta

__all__ = ["dmst_reduce", "build_sharing_plan"]


def dmst_reduce(
    graph: DiGraph,
    candidate_strategy: str = "common-neighbor",
    max_candidates_per_set: int = 16,
    max_posting_length: Optional[int] = 256,
    instrumentation: Optional[Instrumentation] = None,
) -> SharingPlan:
    """Run ``DMST-Reduce`` on ``graph`` and return the sharing plan.

    Parameters
    ----------
    graph:
        The input graph.
    candidate_strategy:
        ``"common-neighbor"`` (pruned, default) or ``"exhaustive"`` (the
        paper's all-pairs construction).  Both yield a valid plan; they may
        differ only in how good the chosen tree is.
    max_candidates_per_set, max_posting_length:
        Pruning knobs of the common-neighbour strategy (see
        :func:`~repro.core.neighbor_index.generate_candidate_edges`).
    instrumentation:
        Optional measurement bundle; the build is recorded under the
        ``"build_mst"`` phase, matching Fig. 6b.
    """
    instrumentation = instrumentation or Instrumentation()
    with instrumentation.timer.phase("build_mst"):
        index = InNeighborIndex.from_graph(graph)
        plan = build_sharing_plan(
            index,
            candidate_strategy=candidate_strategy,
            max_candidates_per_set=max_candidates_per_set,
            max_posting_length=max_posting_length,
        )
    return plan


def build_sharing_plan(
    index: InNeighborIndex,
    candidate_strategy: str = "common-neighbor",
    max_candidates_per_set: int = 16,
    max_posting_length: Optional[int] = 256,
) -> SharingPlan:
    """Build a :class:`SharingPlan` from an in-neighbour-set index.

    Exposed separately from :func:`dmst_reduce` so tests and ablations can
    drive the plan construction with a hand-built index.
    """
    candidate_edges = list(
        generate_candidate_edges(
            index,
            strategy=candidate_strategy,
            max_candidates_per_set=max_candidates_per_set,
            max_posting_length=max_posting_length,
        )
    )

    if index.num_sets == 0:
        return SharingPlan(index, nodes=[], num_candidate_edges=0)

    # Node 0 of G* is the root ∅; node s+1 is the s-th distinct set.
    arborescence = minimum_spanning_arborescence(
        num_vertices=index.num_sets + 1,
        edges=[(edge.source, edge.target, float(edge.weight)) for edge in candidate_edges],
        root=0,
    )

    nodes: list[PlanNode] = []
    for set_id in range(index.num_sets):
        edge_index = arborescence.parent_of(set_id + 1)
        if edge_index is None:  # pragma: no cover - root edges guarantee coverage
            raise AssertionError("every distinct set must be reachable from ∅")
        chosen = candidate_edges[edge_index]
        target_set = index.sets[set_id]
        if chosen.source == 0:
            nodes.append(
                PlanNode(
                    set_id=set_id,
                    parent=ROOT,
                    mode="scratch",
                    removed=(),
                    added=tuple(target_set),
                    weight=chosen.weight,
                )
            )
            continue
        parent_id = chosen.source - 1
        parent_set = index.sets[parent_id]
        if is_sharing_profitable(parent_set, target_set):
            removed, added = split_delta(parent_set, target_set)
            nodes.append(
                PlanNode(
                    set_id=set_id,
                    parent=parent_id,
                    mode="delta",
                    removed=removed,
                    added=added,
                    weight=chosen.weight,
                )
            )
        else:
            # The MST may keep a non-root parent whose weight equals the
            # from-scratch cost; computing from scratch is then just as cheap
            # and avoids keeping the parent's partial sum alive.
            nodes.append(
                PlanNode(
                    set_id=set_id,
                    parent=parent_id,
                    mode="scratch",
                    removed=(),
                    added=tuple(target_set),
                    weight=chosen.weight,
                )
            )

    return SharingPlan(index, nodes=nodes, num_candidate_edges=len(candidate_edges))
