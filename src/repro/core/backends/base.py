"""The compute-backend interface every matrix-form SimRank path goes through.

A backend owns two things:

1. how the backward transition operator ``W`` (the paper's ``Q``) is
   materialised (:meth:`SimRankBackend.transition` — dense ``ndarray`` vs
   ``scipy.sparse`` CSR), and
2. the cost model it reports to the instrumentation layer.

The numerics are shared: both backends iterate

``S_{k+1} = C · W S_k Wᵀ``  (+ diagonal correction)

computed as ``W @ (W @ S.T).T`` so only ``operator @ dense`` products are
ever issued — the orientation that is fast for CSR and free for BLAS — and
both answer batched top-k queries from the series expansion

``S e_q = (1 − C) Σ_i Cⁱ Wⁱ (Wᵀ)ⁱ e_q``

via a Horner evaluation that needs ``O(K)`` operator-vector products per
query batch and never materialises the ``n × n`` matrix.

Backends register themselves in :data:`BACKENDS`; resolve one with
:func:`get_backend` and enumerate them with :func:`available_backends`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, ClassVar, Optional

import numpy as np

from ...exceptions import ConfigurationError
from ..instrumentation import Instrumentation

__all__ = [
    "BACKENDS",
    "DIAGONAL_MODES",
    "SimRankBackend",
    "TransitionOperator",
    "available_backends",
    "get_backend",
    "register_backend",
]

DIAGONAL_MODES = ("one", "matrix")
"""The supported diagonal conventions for the SimRank iteration."""


@dataclass(frozen=True)
class TransitionOperator:
    """A materialised backward-transition operator plus its shape metadata.

    Attributes
    ----------
    matrix:
        The operator ``W`` in the backend's native format (dense ``ndarray``
        or CSR matrix).  It must support ``@`` with dense arrays and ``.T``.
    n:
        Number of vertices (``W`` is ``n × n``).
    nnz:
        Number of stored entries — ``m`` for the sparse backend, ``n²`` for
        the dense one.  Drives the per-iteration cost model.
    """

    matrix: Any
    n: int
    nnz: int


class SimRankBackend(abc.ABC):
    """Abstract compute backend for matrix-form SimRank."""

    name: ClassVar[str] = "abstract"

    @abc.abstractmethod
    def transition(self, graph) -> TransitionOperator:
        """Materialise the backward transition operator for ``graph``.

        ``graph`` may be a :class:`~repro.graph.digraph.DiGraph` or an
        :class:`~repro.graph.edgelist.EdgeListGraph`; the latter skips
        Python adjacency construction entirely.
        """

    @abc.abstractmethod
    def iteration_cost(self, transition: TransitionOperator) -> int:
        """Scalar multiply-adds one iteration costs under this backend."""

    # ------------------------------------------------------------------ #
    # Shared numerics
    # ------------------------------------------------------------------ #
    def iterate(
        self,
        transition: TransitionOperator,
        damping: float,
        iterations: int,
        diagonal: str = "one",
        instrumentation: Optional[Instrumentation] = None,
    ) -> np.ndarray:
        """Run ``iterations`` SimRank iterations and return the dense scores.

        ``diagonal="one"`` pins the diagonal to 1 after every iteration
        (iterative-form convention, Eq. 2); ``diagonal="matrix"`` iterates
        Eq. 3 literally (``+ (1 − C)·I`` each step).
        """
        if diagonal not in DIAGONAL_MODES:
            raise ConfigurationError(
                f"diagonal must be one of {DIAGONAL_MODES}, got {diagonal!r}"
            )
        operator = transition.matrix
        n = transition.n
        scores = np.eye(n, dtype=np.float64)
        identity_term = (1.0 - damping) * np.eye(n, dtype=np.float64)
        cost = self.iteration_cost(transition)
        for _ in range(iterations):
            # W S Wᵀ == W (W Sᵀ)ᵀ: both products are `operator @ dense`.
            inner = np.ascontiguousarray((operator @ scores.T).T)
            propagated = operator @ inner
            if diagonal == "one":
                scores = damping * propagated
                np.fill_diagonal(scores, 1.0)
            else:
                scores = damping * propagated + identity_term
            if instrumentation is not None:
                instrumentation.operations.add("matrix", cost)
        return scores

    def similarity_rows(
        self,
        transition: TransitionOperator,
        indices,
        damping: float,
        iterations: int,
        instrumentation: Optional[Instrumentation] = None,
    ) -> np.ndarray:
        """Return the similarity rows ``s(q, ·)`` for a batch of queries.

        Evaluates the truncated series
        ``(1 − C) Σ_{i=0}^{K} Cⁱ Wⁱ (Wᵀ)ⁱ e_q`` for every query column at
        once: a forward pass collects ``(Wᵀ)ⁱ e_q`` and a Horner-style
        backward pass folds the powers of ``W`` in, so the whole batch costs
        ``2 K`` operator-matrix products and ``O(K · n · q)`` memory — the
        full ``n × n`` matrix is never formed.

        The rows follow the matrix-form convention (Eq. 3 fixed point) except
        that each query's self-similarity is set to 1, matching
        :func:`~repro.baselines.single_pair.single_source_simrank`.  They
        agree with :meth:`iterate` (``diagonal="matrix"``) off the diagonal
        up to the truncation tail ``C^{K+1}``.
        """
        indices = np.asarray(indices, dtype=np.int64).ravel()
        operator = transition.matrix
        operator_t = self._transpose(operator)
        n = transition.n
        batch = indices.size

        walkers = np.zeros((n, batch), dtype=np.float64)
        walkers[indices, np.arange(batch)] = 1.0
        terms = [walkers]
        for _ in range(iterations):
            walkers = operator_t @ walkers
            terms.append(walkers)

        accumulator = terms[iterations].copy()
        for term in range(iterations - 1, -1, -1):
            accumulator = terms[term] + damping * (operator @ accumulator)
        rows = (1.0 - damping) * accumulator.T
        rows[np.arange(batch), indices] = 1.0
        if instrumentation is not None:
            instrumentation.operations.add(
                "similarity_rows", 2 * iterations * transition.nnz * batch
            )
            instrumentation.memory.allocate((iterations + 1) * n * batch)
        return rows

    @staticmethod
    def _transpose(operator):
        transposed = operator.T
        if hasattr(transposed, "tocsr"):
            transposed = transposed.tocsr()
        return transposed


BACKENDS: dict[str, SimRankBackend] = {}
"""Registry of compute backends, keyed by name (``"dense"``, ``"sparse"``)."""


def register_backend(backend: SimRankBackend) -> SimRankBackend:
    """Add ``backend`` to :data:`BACKENDS` (replacing any same-named one)."""
    BACKENDS[backend.name] = backend
    return backend


def available_backends() -> tuple[str, ...]:
    """Return the registered backend names, sorted."""
    return tuple(sorted(BACKENDS))


def get_backend(name) -> SimRankBackend:
    """Resolve a backend by name (or pass an instance through unchanged)."""
    if isinstance(name, SimRankBackend):
        return name
    try:
        return BACKENDS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown backend {name!r}; available: {', '.join(available_backends())}"
        ) from None
