"""Dense NumPy backend: the transition operator as a materialised ``n × n`` array.

This is the BLAS reference implementation — every iteration is two dense
GEMMs costing ``O(n³)`` multiply-adds and the operator alone occupies ``n²``
floats.  It is exact and simple, and on small graphs the BLAS constant can
win, but on sparse graphs the :mod:`~repro.core.backends.sparse` backend does
the same arithmetic in ``O(m · n)`` per iteration.
"""

from __future__ import annotations

import numpy as np

from ...graph.matrices import backward_transition_matrix
from .base import SimRankBackend, TransitionOperator, register_backend

__all__ = ["DenseBackend"]


class DenseBackend(SimRankBackend):
    """Materialise ``W`` densely and iterate with BLAS matmuls."""

    name = "dense"

    def transition(self, graph) -> TransitionOperator:
        n = graph.num_vertices
        matrix = np.ascontiguousarray(
            backward_transition_matrix(graph).toarray(), dtype=np.float64
        )
        return TransitionOperator(matrix=matrix, n=n, nnz=n * n)

    def iteration_cost(self, transition: TransitionOperator) -> int:
        # Two n×n GEMMs per iteration.
        return 2 * transition.n**3


register_backend(DenseBackend())
