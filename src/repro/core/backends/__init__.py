"""Compute backends for matrix-form SimRank (dense BLAS vs sparse CSR).

Every matrix-form code path in the package — :func:`repro.simrank` with
``method="matrix"``, :func:`repro.baselines.matrix_sr.matrix_simrank`, the
batched top-k query path and the benchmark harness — dispatches through this
package.  ``dense`` materialises the transition operator as an ``n × n``
array and iterates with BLAS; ``sparse`` keeps it in CSR form for
``O(m · n)`` iterations and edge-list-direct construction.  New backends
(GPU, sharded, ...) plug in via :func:`register_backend`.
"""

from .base import (
    BACKENDS,
    DIAGONAL_MODES,
    SimRankBackend,
    TransitionOperator,
    available_backends,
    get_backend,
    register_backend,
)
from .dense import DenseBackend
from .sparse import SparseBackend

__all__ = [
    "BACKENDS",
    "DIAGONAL_MODES",
    "SimRankBackend",
    "TransitionOperator",
    "available_backends",
    "get_backend",
    "register_backend",
    "DenseBackend",
    "SparseBackend",
]
