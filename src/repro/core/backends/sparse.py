"""Sparse CSR backend: the transition operator stays in ``scipy.sparse`` form.

The backward transition matrix has exactly ``m`` non-zeros (one per edge), so
keeping it in CSR makes every SimRank iteration two CSR-times-dense products
costing ``O(m · n)`` multiply-adds instead of the dense backend's ``O(n³)``
— the standard sparse linear-algebra recipe for graph-shaped workloads.  The
score matrix itself is kept dense (SimRank scores fill in quickly), but the
batched top-k path inherited from :class:`~repro.core.backends.base.
SimRankBackend` never materialises it at all.

When handed an :class:`~repro.graph.edgelist.EdgeListGraph`, the CSR operator
is assembled straight from the raw edge arrays — no sorted Python adjacency
lists are ever built.
"""

from __future__ import annotations

from .base import SimRankBackend, TransitionOperator, register_backend

__all__ = ["SparseBackend"]


class SparseBackend(SimRankBackend):
    """Keep ``W`` in CSR form and iterate with sparse-dense products."""

    name = "sparse"

    def transition(self, graph) -> TransitionOperator:
        from ...graph.matrices import (
            backward_transition_from_edges,
            edge_arrays,
        )

        n = graph.num_vertices
        sources, targets = edge_arrays(graph)
        matrix = backward_transition_from_edges(n, sources, targets)
        return TransitionOperator(matrix=matrix, n=n, nnz=int(matrix.nnz))

    def iteration_cost(self, transition: TransitionOperator) -> int:
        # Two CSR @ dense products, each m·n multiply-adds.
        return 2 * transition.nnz * transition.n


register_backend(SparseBackend())
