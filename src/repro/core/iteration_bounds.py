"""A-priori iteration counts for a target accuracy (Section IV of the paper).

Three quantities are compared throughout the paper's Fig. 6e/6f and the
worked example at the end of Section IV:

* conventional SimRank needs ``K = ⌈log_C ε⌉`` iterations for accuracy ``ε``
  (Lizorkin et al.'s bound, restated by the paper);
* differential SimRank needs the smallest ``K'`` with
  ``C^{K'+1}/(K'+1)! ≤ ε`` (Prop. 7), which we can evaluate exactly;
* two closed-form estimates of that ``K'``: Corollary 1 (via the Lambert W
  function) and Corollary 2 (via the elementary bound
  ``W(x) ≥ ln x − ln ln x``).

A note on the corollaries: the paper's displayed formulas omit a ``−1``
shift, but its own worked example (C = 0.8, ε = 10⁻⁴ → K' = 7) and every
entry of Fig. 6f include it — tracing the derivation, the Stirling variable
substitution is ``x = (K' + 1)/(eC)``, so ``K' = ⌈ln ε' / W(·) − 1⌉``.  We
implement the shifted version, which reproduces Fig. 6f exactly; the
unshifted value is available via ``shift=0`` for comparison.
"""

from __future__ import annotations

import math

from ..exceptions import ConfigurationError
from ..numerics.lambert_w import lambert_w
from ..numerics.series import exponential_tail_bound
from .result import validate_damping

__all__ = [
    "conventional_iterations",
    "differential_iterations_exact",
    "differential_iterations_lambert",
    "differential_iterations_log",
    "log_estimate_valid_threshold",
    "iteration_bound_table",
]


def _check_accuracy(accuracy: float) -> float:
    if not 0.0 < accuracy < 1.0:
        raise ConfigurationError(
            f"accuracy epsilon must lie in (0, 1), got {accuracy}"
        )
    return float(accuracy)


def conventional_iterations(accuracy: float, damping: float) -> int:
    """Return ``K = ⌈log_C ε⌉``, the conventional SimRank iteration count."""
    accuracy = _check_accuracy(accuracy)
    damping = validate_damping(damping)
    return int(math.ceil(math.log(accuracy) / math.log(damping)))


def differential_iterations_exact(accuracy: float, damping: float) -> int:
    """Return the smallest ``K'`` with ``C^{K'+1}/(K'+1)! ≤ ε`` (Prop. 7)."""
    accuracy = _check_accuracy(accuracy)
    damping = validate_damping(damping)
    iterations = 0
    while exponential_tail_bound(damping, iterations) > accuracy:
        iterations += 1
        if iterations > 10_000:  # pragma: no cover - defensive cap
            raise ConfigurationError(
                "differential iteration bound did not converge; check inputs"
            )
    return iterations


def _epsilon_prime(accuracy: float) -> float:
    """Return ``ε' = 1 / (√(2π)·ε)`` used by both corollaries."""
    return 1.0 / (math.sqrt(2.0 * math.pi) * accuracy)


def differential_iterations_lambert(
    accuracy: float, damping: float, shift: int = 1
) -> int:
    """Corollary 1: the Lambert-W estimate of the differential iteration count.

    ``K' = ⌈ ln ε' / W( ln ε' / (eC) ) − shift ⌉`` with
    ``ε' = (√(2π)·ε)^{-1}``.  ``shift=1`` (default) reproduces the paper's
    worked example and Fig. 6f; ``shift=0`` is the formula as printed.
    """
    accuracy = _check_accuracy(accuracy)
    damping = validate_damping(damping)
    log_eps_prime = math.log(_epsilon_prime(accuracy))
    if log_eps_prime <= 0:
        # Extremely loose accuracy: a single iteration is already enough.
        return max(1 - shift, 0)
    argument = log_eps_prime / (math.e * damping)
    w_value = lambert_w(argument)
    if w_value <= 0:
        return max(1 - shift, 0)
    estimate = log_eps_prime / w_value - shift
    return max(int(math.ceil(estimate)), 0)


def log_estimate_valid_threshold(damping: float) -> float:
    """Return the largest ``ε`` for which Corollary 2 applies.

    Corollary 2 requires ``0 < ε < e^{-C e²} / √(2π)`` so that the argument
    of the inner logarithm exceeds ``e``.
    """
    damping = validate_damping(damping)
    return math.exp(-damping * math.e**2) / math.sqrt(2.0 * math.pi)


def differential_iterations_log(
    accuracy: float, damping: float, shift: int = 1
) -> int:
    """Corollary 2: the logarithm-only estimate of the differential count.

    ``K' = ⌈ ln ε' / (θ − ln θ) − shift ⌉`` with
    ``θ = ln( ln ε' / (eC) )``; valid only for ``ε`` below
    :func:`log_estimate_valid_threshold`.
    """
    accuracy = _check_accuracy(accuracy)
    damping = validate_damping(damping)
    threshold = log_estimate_valid_threshold(damping)
    if accuracy >= threshold:
        raise ConfigurationError(
            f"the log estimate requires epsilon < {threshold:.3e} for "
            f"C={damping}; got {accuracy}"
        )
    log_eps_prime = math.log(_epsilon_prime(accuracy))
    theta = math.log(log_eps_prime / (math.e * damping))
    denominator = theta - math.log(theta)
    estimate = log_eps_prime / denominator - shift
    return max(int(math.ceil(estimate)), 0)


def iteration_bound_table(
    accuracies: tuple[float, ...] = (1e-2, 1e-3, 1e-4, 1e-5, 1e-6),
    damping: float = 0.8,
) -> list[dict[str, object]]:
    """Reproduce the structure of the paper's Fig. 6f for the given settings.

    Each row contains the conventional bound ``K``, the exact differential
    count, the Lambert-W estimate and (where valid) the log estimate.
    """
    damping = validate_damping(damping)
    threshold = log_estimate_valid_threshold(damping)
    rows: list[dict[str, object]] = []
    for accuracy in accuracies:
        row: dict[str, object] = {
            "epsilon": accuracy,
            "conventional_K": conventional_iterations(accuracy, damping),
            "differential_exact": differential_iterations_exact(accuracy, damping),
            "lambert_estimate": differential_iterations_lambert(accuracy, damping),
        }
        if accuracy < threshold:
            row["log_estimate"] = differential_iterations_log(accuracy, damping)
        else:
            row["log_estimate"] = None
        rows.append(row)
    return rows
