"""Partial-sum primitives (Eq. 4, Eq. 9, Prop. 4 of the paper).

A *partial sum* over a vertex set ``D`` is the function
``Partial^{s_k}_D(y) = Σ_{x ∈ D} s_k(x, y)`` (Eq. 4).  ``psum-SR`` memoises
these per source vertex; the paper's contribution is to *share* them across
in-neighbour sets via symmetric-difference updates (Eq. 9) and to share the
*outer* sums ``OuterPartial^{I(a),s_k}_{I(b)} = Σ_{y ∈ I(b)} Partial_{I(a)}(y)``
the same way (Prop. 4).

The functions here are the direct, equation-level implementations.  They are
used by the tests (to replay the paper's Fig. 4 worked example), by the
``psum-SR`` baseline, and as the reference against which the vectorised
:class:`~repro.core.sharing_engine.SharingEngine` is validated.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

__all__ = [
    "partial_sum",
    "partial_sum_vector",
    "update_partial_sum_vector",
    "outer_partial_sum",
    "update_outer_partial_sum",
]


def partial_sum(scores: np.ndarray, source_set: Iterable[int], target: int) -> float:
    """Return ``Partial^{s_k}_D(target) = Σ_{x ∈ D} s_k(x, target)`` (Eq. 4)."""
    total = 0.0
    for source in source_set:
        total += float(scores[source, target])
    return total


def partial_sum_vector(scores: np.ndarray, source_set: Sequence[int]) -> np.ndarray:
    """Return the full vector ``y ↦ Partial^{s_k}_D(y)`` for ``D = source_set``.

    This is the quantity Algorithm 1 computes "from scratch" for the first
    edge of every DMST path (lines 5–6); it costs ``(|D| − 1)·n`` additions.
    """
    if len(source_set) == 0:
        return np.zeros(scores.shape[1], dtype=scores.dtype)
    indices = np.asarray(list(source_set), dtype=np.intp)
    return scores[indices, :].sum(axis=0)


def update_partial_sum_vector(
    cached: np.ndarray,
    scores: np.ndarray,
    removed: Sequence[int],
    added: Sequence[int],
) -> np.ndarray:
    """Derive ``Partial_{I(b)}`` from a cached ``Partial_{I(a)}`` (Eq. 9).

    ``removed`` is ``I(a) \\ I(b)`` and ``added`` is ``I(b) \\ I(a)``; the
    update costs ``|I(a) ⊖ I(b)|`` row additions instead of ``|I(b)| − 1``.
    The cached vector is not modified.
    """
    updated = np.array(cached, copy=True)
    if len(removed):
        removed_indices = np.asarray(list(removed), dtype=np.intp)
        updated -= scores[removed_indices, :].sum(axis=0)
    if len(added):
        added_indices = np.asarray(list(added), dtype=np.intp)
        updated += scores[added_indices, :].sum(axis=0)
    return updated


def outer_partial_sum(
    partial: np.ndarray, target_set: Iterable[int]
) -> float:
    """Return ``OuterPartial = Σ_{y ∈ target_set} Partial(y)`` (Eq. 10)."""
    total = 0.0
    for target in target_set:
        total += float(partial[target])
    return total


def update_outer_partial_sum(
    cached: float,
    partial: np.ndarray,
    removed: Sequence[int],
    added: Sequence[int],
) -> float:
    """Derive ``OuterPartial_{I(d)}`` from a cached ``OuterPartial_{I(b)}``.

    Implements Prop. 4(i): subtract the partial sums of ``I(b) \\ I(d)`` and
    add those of ``I(d) \\ I(b)``, costing ``|I(b) ⊖ I(d)|`` additions.
    """
    updated = float(cached)
    for vertex in removed:
        updated -= float(partial[vertex])
    for vertex in added:
        updated += float(partial[vertex])
    return updated
