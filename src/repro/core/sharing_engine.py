"""Vectorised execution engine for partial-sums sharing (Algorithm 1 + OP).

The engine turns a :class:`~repro.core.plans.SharingPlan` into numpy-friendly
index arrays once, then performs SimRank iterations that follow the paper's
Algorithm 1 exactly:

* **inner partial sums** — for every distinct in-neighbour set, the vector
  ``y ↦ Partial_{I}(y)`` is either computed from scratch (root children) or
  derived from its tree parent's cached vector with the symmetric-difference
  update of Eq. 9;
* **outer partial sums** — for a fixed source set, the scalars
  ``OuterPartial_{I(target)}`` for *all* target sets are computed along the
  same tree using Prop. 4, then converted into a full similarity row;
* **memory discipline** — a partial-sum vector is freed as soon as the
  subtree below it has been processed, mirroring the explicit ``free`` steps
  of the pseudo-code, and the peak is recorded.

The same engine serves both the conventional model (OIP-SR: damping ``C``
inside the update, diagonal pinned to 1) and the differential model
(OIP-DSR: factor 1, no pinning, the caller accumulates the exponential
series), which is exactly how the paper reuses its optimisation for Eq. 15.

A note on operation counting: the engine counts *scalar additions on
similarity values*, the unit of the paper's ``O(K d n²)`` analysis.  One
"row operation" on a length-``n`` partial-sum vector counts as ``n``
additions; outer-partial updates count one addition per element touched.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graph.digraph import DiGraph
from .instrumentation import Instrumentation
from .plans import ROOT, SharingPlan

__all__ = ["SharingEngine"]


class SharingEngine:
    """Executes shared-partial-sums SimRank iterations over a fixed plan."""

    def __init__(
        self,
        graph: DiGraph,
        plan: SharingPlan,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        self.graph = graph
        self.plan = plan
        self.instrumentation = instrumentation or Instrumentation()

        index = plan.index
        self.num_vertices = graph.num_vertices
        self.num_sets = index.num_sets

        self._set_indices = [
            np.asarray(index.sets[set_id], dtype=np.intp)
            for set_id in range(self.num_sets)
        ]
        self._member_indices = [
            np.asarray(index.members[set_id], dtype=np.intp)
            for set_id in range(self.num_sets)
        ]
        self._set_sizes = np.array(
            [index.set_size(set_id) for set_id in range(self.num_sets)],
            dtype=np.float64,
        )
        self._parents = np.array(
            [node.parent for node in plan.nodes], dtype=np.int64
        )
        self._is_delta = np.array(
            [node.mode == "delta" for node in plan.nodes], dtype=bool
        )
        self._removed_indices = [
            np.asarray(node.removed, dtype=np.intp) for node in plan.nodes
        ]
        self._added_indices = [
            np.asarray(node.added, dtype=np.intp) for node in plan.nodes
        ]
        self._dfs_order = plan.dfs_order()
        self._children_counts = np.array(
            [len(plan.children_of(set_id)) for set_id in range(self.num_sets)],
            dtype=np.int64,
        )

        # Map every vertex to its distinct-set id, using ``num_sets`` as a
        # sentinel slot holding value 0 for vertices with no in-neighbours.
        sentinel = self.num_sets
        vertex_set_id = np.where(
            index.set_of_vertex >= 0, index.set_of_vertex, sentinel
        )
        self._vertex_set_id = vertex_set_id.astype(np.intp)

        self._build_outer_pass_arrays()
        self._count_static_costs()

    # ------------------------------------------------------------------ #
    # Precomputation
    # ------------------------------------------------------------------ #
    def _build_outer_pass_arrays(self) -> None:
        """Flatten the outer-partial-sum pass into bincount-friendly arrays.

        The pass has two parts: "scratch" sets are summed directly from the
        partial-sum vector, and "delta" sets reuse their tree parent's value
        through the Prop. 4 recurrence
        ``outer[t] = outer[parent] − Σ removed + Σ added``.  Unrolling that
        recurrence along every root-to-node path gives
        ``outer[t] = outer[anchor(t)] + Σ_{u on path} (added_u − removed_u)``
        where ``anchor(t)`` is the nearest scratch ancestor, so the whole
        pass can be evaluated with two ``bincount`` calls and one sparse
        ancestor-indicator product — no per-set Python loop.
        """
        scratch_ids: list[int] = []
        scratch_concat: list[int] = []
        scratch_segments: list[int] = []
        delta_ids: list[int] = []
        delta_position: dict[int, int] = {}
        removed_concat: list[int] = []
        removed_segments: list[int] = []
        added_concat: list[int] = []
        added_segments: list[int] = []

        for set_id in self._dfs_order:
            if self._is_delta[set_id]:
                segment = len(delta_ids)
                delta_position[set_id] = segment
                delta_ids.append(set_id)
                for vertex in self._removed_indices[set_id]:
                    removed_concat.append(int(vertex))
                    removed_segments.append(segment)
                for vertex in self._added_indices[set_id]:
                    added_concat.append(int(vertex))
                    added_segments.append(segment)
            else:
                segment = len(scratch_ids)
                scratch_ids.append(set_id)
                for vertex in self._set_indices[set_id]:
                    scratch_concat.append(int(vertex))
                    scratch_segments.append(segment)

        self._scratch_ids = np.asarray(scratch_ids, dtype=np.intp)
        self._scratch_concat = np.asarray(scratch_concat, dtype=np.intp)
        self._scratch_segments = np.asarray(scratch_segments, dtype=np.intp)
        self._delta_ids = np.asarray(delta_ids, dtype=np.intp)
        # Removed and added contributions are only ever used as their signed
        # combination (added − removed), so they are fused into one gather +
        # one weighted bincount per pass.
        self._delta_concat = np.asarray(removed_concat + added_concat, dtype=np.intp)
        self._delta_segments = np.asarray(
            removed_segments + added_segments, dtype=np.intp
        )
        self._delta_signs = np.concatenate(
            [
                -np.ones(len(removed_concat), dtype=np.float64),
                np.ones(len(added_concat), dtype=np.float64),
            ]
        )

        # Anchor of every delta node (nearest non-delta ancestor) and the
        # sparse indicator of its delta ancestors (itself included).
        anchors: list[int] = []
        indicator_rows: list[int] = []
        indicator_cols: list[int] = []
        for position, set_id in enumerate(delta_ids):
            node = set_id
            while self._is_delta[node]:
                indicator_rows.append(position)
                indicator_cols.append(delta_position[node])
                node = int(self._parents[node])
            anchors.append(node)
        self._delta_anchor_ids = np.asarray(anchors, dtype=np.intp)
        num_delta = len(delta_ids)
        if num_delta:
            from scipy import sparse

            data = np.ones(len(indicator_rows), dtype=np.float64)
            self._delta_ancestor_matrix = sparse.csr_matrix(
                (data, (indicator_rows, indicator_cols)),
                shape=(num_delta, num_delta),
            )
        else:
            self._delta_ancestor_matrix = None

    def _count_static_costs(self) -> None:
        """Pre-compute per-iteration addition counts implied by the plan."""
        n = self.num_vertices
        inner_row_ops = 0
        outer_ops_per_pass = 0
        for node in self.plan.nodes:
            if node.mode == "delta":
                ops = len(node.removed) + len(node.added)
            else:
                ops = max(self.plan.index.set_size(node.set_id) - 1, 0)
            inner_row_ops += ops
            outer_ops_per_pass += ops
        self.inner_additions_per_iteration = inner_row_ops * n
        self.outer_additions_per_iteration = outer_ops_per_pass * self.num_sets
        self.outer_additions_per_pass = outer_ops_per_pass

    # ------------------------------------------------------------------ #
    # Iteration
    # ------------------------------------------------------------------ #
    def iterate(
        self,
        scores: np.ndarray,
        factor: float,
        pin_diagonal: bool,
    ) -> np.ndarray:
        """Perform one shared-sums iteration.

        Parameters
        ----------
        scores:
            The current iterate ``s_k`` (dense ``n × n``).
        factor:
            Multiplier applied inside the update: the damping factor ``C``
            for conventional SimRank (Eq. 2), ``1.0`` for the differential
            auxiliary sequence ``T_k`` (Eq. 15).
        pin_diagonal:
            Whether to force the diagonal of the result to 1 (Eq. 2 case i).

        Returns
        -------
        numpy.ndarray
            The next iterate ``s_{k+1}`` (or ``T_{k+1}``).
        """
        n = self.num_vertices
        operations = self.instrumentation.operations
        memory = self.instrumentation.memory

        new_scores = np.zeros((n, n), dtype=np.float64)
        outer = np.zeros(self.num_sets, dtype=np.float64)
        row_values = np.zeros(self.num_sets + 1, dtype=np.float64)
        memory.allocate(self.num_sets * 2 + 1)

        partial_of: dict[int, np.ndarray] = {}
        remaining_children = self._children_counts.copy()

        for set_id in self._dfs_order:
            partial = self._compute_inner_partial(set_id, scores, partial_of)
            partial_of[set_id] = partial
            memory.allocate(n)

            self._compute_outer_pass(partial, outer)
            operations.add("outer", self.outer_additions_per_pass)

            # Convert outer partial sums into one similarity row shared by
            # every vertex whose in-neighbour set is `set_id`.
            scale = factor / self._set_sizes[set_id]
            np.divide(outer, self._set_sizes, out=row_values[: self.num_sets])
            row_values[: self.num_sets] *= scale
            row = row_values[self._vertex_set_id]
            for vertex in self._member_indices[set_id]:
                new_scores[vertex, :] = row

            self._release_finished(set_id, partial_of, remaining_children, memory)

        memory.release(self.num_sets * 2 + 1)
        if pin_diagonal:
            np.fill_diagonal(new_scores, 1.0)
        return new_scores

    def _compute_inner_partial(
        self,
        set_id: int,
        scores: np.ndarray,
        partial_of: dict[int, np.ndarray],
    ) -> np.ndarray:
        """Compute ``Partial_{I}`` for one set (scratch or Eq. 9 delta)."""
        n = self.num_vertices
        operations = self.instrumentation.operations
        if self._is_delta[set_id]:
            parent = int(self._parents[set_id])
            partial = partial_of[parent].copy()
            removed = self._removed_indices[set_id]
            added = self._added_indices[set_id]
            if removed.size:
                partial -= scores[removed, :].sum(axis=0)
            if added.size:
                partial += scores[added, :].sum(axis=0)
            operations.add("inner", (removed.size + added.size) * n)
            return partial
        indices = self._set_indices[set_id]
        partial = scores[indices, :].sum(axis=0)
        operations.add("inner", max(indices.size - 1, 0) * n)
        return partial

    def _compute_outer_pass(self, partial: np.ndarray, outer: np.ndarray) -> None:
        """Fill ``outer[t]`` for every target set ``t`` (Prop. 4 sharing)."""
        if self._scratch_ids.size:
            scratch_sums = np.bincount(
                self._scratch_segments,
                weights=partial[self._scratch_concat],
                minlength=self._scratch_ids.size,
            )
            outer[self._scratch_ids] = scratch_sums
        if self._delta_ids.size:
            net_deltas = np.bincount(
                self._delta_segments,
                weights=partial[self._delta_concat] * self._delta_signs,
                minlength=self._delta_ids.size,
            )
            # Unrolled Prop. 4 recurrence: anchor value plus the cumulative
            # (added − removed) contributions along the tree path.
            cumulative = self._delta_ancestor_matrix @ net_deltas
            outer[self._delta_ids] = outer[self._delta_anchor_ids] + cumulative

    def _release_finished(
        self,
        set_id: int,
        partial_of: dict[int, np.ndarray],
        remaining_children: np.ndarray,
        memory,
    ) -> None:
        """Free cached partial sums whose subtrees have been fully processed."""
        node = set_id
        while remaining_children[node] == 0:
            parent = int(self._parents[node])
            if node in partial_of:
                del partial_of[node]
                memory.release(self.num_vertices)
            if parent == ROOT:
                break
            remaining_children[parent] -= 1
            node = parent

    # ------------------------------------------------------------------ #
    # Reporting helpers
    # ------------------------------------------------------------------ #
    def additions_per_iteration(self) -> int:
        """Total counted additions one iteration performs."""
        return self.inner_additions_per_iteration + self.outer_additions_per_iteration

    def initial_scores(self) -> np.ndarray:
        """Return the SimRank starting point ``s_0 = I_n``."""
        return np.eye(self.num_vertices, dtype=np.float64)
