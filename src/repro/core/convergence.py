"""Convergence monitoring: residual histories and empirical iteration counts.

Fig. 6e of the paper plots, for accuracies ``ε ∈ {10⁻², …, 10⁻⁶}``, the number
of iterations the conventional model and the differential model actually
need, next to the a-priori estimates of Section IV.  The helpers here run an
iterative solver step-by-step, record the successive-iterate residual
``‖S_{k+1} − S_k‖_max`` and report, for each requested accuracy, the first
iteration at which the residual (or the model's theoretical tail bound)
drops below it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..numerics.norms import max_difference
from ..numerics.series import exponential_tail_bound, geometric_tail

__all__ = ["ConvergenceTrace", "trace_convergence", "iterations_to_accuracy"]


@dataclass
class ConvergenceTrace:
    """Residual history of an iterative SimRank computation.

    Attributes
    ----------
    residuals:
        ``residuals[k]`` is ``‖S_{k+1} − S_k‖_max`` after iteration ``k+1``.
    model:
        ``"conventional"`` or ``"differential"`` (used to pick the matching
        theoretical tail bound).
    damping:
        The damping factor used by the run.
    """

    residuals: list[float] = field(default_factory=list)
    model: str = "conventional"
    damping: float = 0.6

    def record(self, residual: float) -> None:
        """Append one residual measurement."""
        self.residuals.append(float(residual))

    def iterations_for(self, accuracy: float) -> int:
        """First iteration count whose residual is ``≤ accuracy``.

        Returns ``len(residuals)`` (i.e. "not reached within the trace") when
        no recorded residual is small enough; callers typically run the trace
        long enough for the largest accuracy they care about.
        """
        for iteration, residual in enumerate(self.residuals, start=1):
            if residual <= accuracy:
                return iteration
        return len(self.residuals)

    def theoretical_bound(self, iterations: int) -> float:
        """Return the model's theoretical error bound after ``iterations``."""
        if self.model == "conventional":
            return geometric_tail(self.damping, iterations)
        if self.model == "differential":
            return exponential_tail_bound(self.damping, max(iterations - 1, 0))
        raise ConfigurationError(f"unknown convergence model {self.model!r}")


def trace_convergence(
    initial: np.ndarray,
    step: Callable[[np.ndarray, int], np.ndarray],
    num_iterations: int,
    model: str = "conventional",
    damping: float = 0.6,
) -> tuple[np.ndarray, ConvergenceTrace]:
    """Run ``num_iterations`` of ``step`` and record successive residuals.

    Parameters
    ----------
    initial:
        The starting iterate ``S_0``.
    step:
        Callable mapping ``(S_k, k)`` to ``S_{k+1}``.
    num_iterations:
        Number of iterations to run.
    model, damping:
        Metadata recorded on the trace (used for theoretical bounds).

    Returns
    -------
    tuple
        The final iterate and the populated :class:`ConvergenceTrace`.
    """
    if num_iterations < 0:
        raise ConfigurationError("num_iterations must be non-negative")
    trace = ConvergenceTrace(model=model, damping=damping)
    current = initial
    for iteration in range(num_iterations):
        updated = step(current, iteration)
        trace.record(max_difference(updated, current))
        current = updated
    return current, trace


def iterations_to_accuracy(
    trace: ConvergenceTrace, accuracies: Sequence[float]
) -> dict[float, int]:
    """Map each accuracy to the empirical iteration count from ``trace``."""
    return {accuracy: trace.iterations_for(accuracy) for accuracy in accuracies}
