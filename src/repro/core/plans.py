"""The sharing plan: output of ``DMST-Reduce``, input to the OIP solvers.

A :class:`SharingPlan` captures everything Algorithm 1 needs about the
minimum spanning arborescence ``T`` of the transition-cost graph ``G*``:

* for every distinct in-neighbour set, its tree parent and whether its
  partial sum should be *derived* from the parent (symmetric-difference
  update, Eq. 9) or computed from *scratch*;
* the concrete ``removed`` / ``added`` index arrays used by the update;
* a depth-first traversal order (parents before children) and a chain
  decomposition matching the paper's path-by-path processing;
* the partition ``P(I(v))`` of every in-neighbour set implied by the tree
  (the paper's Fig. 3a view), exposed mainly for inspection and tests.

The plan is a pure description — it never touches similarity scores — so a
single plan is reused across all ``K`` iterations and across the OIP-SR and
OIP-DSR solvers, which is precisely why the MST build cost is amortised in
Fig. 6b.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .neighbor_index import InNeighborIndex

__all__ = ["SharingPlan", "PlanNode", "PartitionBlock"]

ROOT = -1
"""Sentinel parent id meaning "the empty set ∅" (the DMST root)."""


@dataclass(frozen=True)
class PlanNode:
    """Per-distinct-set entry of a :class:`SharingPlan`.

    Attributes
    ----------
    set_id:
        Index of the distinct in-neighbour set in the plan's
        :class:`~repro.core.neighbor_index.InNeighborIndex`.
    parent:
        Parent set id in the arborescence, or ``ROOT`` (-1).
    mode:
        ``"scratch"`` when the partial sum is computed from its own elements,
        ``"delta"`` when it is derived from the parent's cached partial sum.
    removed, added:
        Vertex-id arrays for the Eq. 9 update (empty for scratch nodes).
    weight:
        The chosen transition cost (number of additions per output element).
    """

    set_id: int
    parent: int
    mode: str
    removed: tuple[int, ...]
    added: tuple[int, ...]
    weight: int


@dataclass(frozen=True)
class PartitionBlock:
    """One block of the partition ``P(I(v))`` induced by the plan (Fig. 3a)."""

    vertices: tuple[int, ...]
    derived_from: int
    """Parent set id the block is borrowed from, or ``ROOT`` for fresh blocks."""


class SharingPlan:
    """Sharing order and deltas produced by ``DMST-Reduce``.

    Parameters
    ----------
    index:
        The distinct in-neighbour-set index of the input graph.
    nodes:
        One :class:`PlanNode` per distinct set, in set-id order.
    num_candidate_edges:
        How many candidate edges the transition-cost graph contained.
    """

    def __init__(
        self,
        index: InNeighborIndex,
        nodes: list[PlanNode],
        num_candidate_edges: int = 0,
    ) -> None:
        if len(nodes) != index.num_sets:
            raise ValueError(
                f"expected {index.num_sets} plan nodes, got {len(nodes)}"
            )
        self.index = index
        self.nodes: tuple[PlanNode, ...] = tuple(nodes)
        self.num_candidate_edges = int(num_candidate_edges)

        children: list[list[int]] = [[] for _ in range(index.num_sets)]
        root_children: list[int] = []
        for node in self.nodes:
            if node.parent == ROOT:
                root_children.append(node.set_id)
            else:
                children[node.parent].append(node.set_id)
        self._children: tuple[tuple[int, ...], ...] = tuple(
            tuple(group) for group in children
        )
        self._root_children: tuple[int, ...] = tuple(root_children)
        self._dfs_order: tuple[int, ...] = tuple(self._compute_dfs_order())

    # ------------------------------------------------------------------ #
    # Structure accessors
    # ------------------------------------------------------------------ #
    @property
    def num_sets(self) -> int:
        """Number of distinct non-empty in-neighbour sets covered."""
        return self.index.num_sets

    def children_of(self, set_id: int) -> tuple[int, ...]:
        """Return the tree children of ``set_id``."""
        return self._children[set_id]

    @property
    def root_children(self) -> tuple[int, ...]:
        """Sets whose partial sums are computed from scratch at path starts."""
        return self._root_children

    def dfs_order(self) -> tuple[int, ...]:
        """Return a depth-first pre-order of all sets (parents first)."""
        return self._dfs_order

    def _compute_dfs_order(self) -> list[int]:
        order: list[int] = []
        stack = list(reversed(self._root_children))
        while stack:
            set_id = stack.pop()
            order.append(set_id)
            stack.extend(reversed(self._children[set_id]))
        return order

    def chains(self) -> Iterator[list[int]]:
        """Yield the plan as chains, mirroring the paper's path decomposition.

        Each chain starts at a set whose partial sum is computed from scratch
        (a root child, or the non-first child of a branching node) and
        continues parent→child as long as each node is the *first* child of
        its parent.  Processing chain-by-chain needs only two cached partial
        sums at any time, which is the paper's ``O(n)`` intermediate-memory
        regime.
        """
        for start in self._chain_starts():
            chain = [start]
            current = start
            while self._children[current]:
                current = self._children[current][0]
                chain.append(current)
            yield chain

    def _chain_starts(self) -> list[int]:
        starts = list(self._root_children)
        for set_id in range(self.num_sets):
            children = self._children[set_id]
            starts.extend(children[1:])
        # Keep deterministic DFS-consistent ordering.
        position = {set_id: rank for rank, set_id in enumerate(self._dfs_order)}
        return sorted(starts, key=lambda set_id: position[set_id])

    # ------------------------------------------------------------------ #
    # Cost model
    # ------------------------------------------------------------------ #
    def total_weight(self) -> int:
        """Total transition cost of the chosen arborescence edges."""
        return sum(node.weight for node in self.nodes)

    def scratch_weight(self) -> int:
        """Cost psum-SR would pay: ``Σ (|I| − 1)`` over all *vertices*.

        Note this is weighted by the number of member vertices because
        psum-SR recomputes the partial sum separately for every source
        vertex, even when two vertices share the same in-neighbour set.
        """
        total = 0
        for set_id, members in enumerate(self.index.members):
            total += max(self.index.set_size(set_id) - 1, 0) * len(members)
        return total

    def distinct_scratch_weight(self) -> int:
        """Cost of building every *distinct* set from scratch once."""
        return sum(
            max(self.index.set_size(set_id) - 1, 0)
            for set_id in range(self.num_sets)
        )

    def shared_node_count(self) -> int:
        """Number of sets whose partial sum is derived from a parent."""
        return sum(1 for node in self.nodes if node.mode == "delta")

    def share_ratio(self) -> float:
        """Fraction of distinct sets that reuse a cached partial sum."""
        if not self.nodes:
            return 0.0
        return self.shared_node_count() / len(self.nodes)

    def average_delta_size(self) -> float:
        """The paper's ``d_⊖``: mean update size over the chosen tree edges."""
        if not self.nodes:
            return 0.0
        return float(np.mean([node.weight for node in self.nodes]))

    # ------------------------------------------------------------------ #
    # Fig. 3a view
    # ------------------------------------------------------------------ #
    def partitions(self) -> dict[int, list[PartitionBlock]]:
        """Return the induced partition ``P(I)`` of every distinct set.

        For scratch nodes the partition is the trivial one (a single fresh
        block).  For delta nodes it is
        ``{I(parent) ∩ I(self), I(self) \\ I(parent)}`` — the first block is
        tagged with the parent set id it is derived from, reproducing the
        paper's Fig. 3a (e.g. ``P(I(c)) = {I(a), {d}}``).
        """
        partitions: dict[int, list[PartitionBlock]] = {}
        for node in self.nodes:
            own = set(self.index.sets[node.set_id])
            if node.mode == "scratch" or node.parent == ROOT:
                partitions[node.set_id] = [
                    PartitionBlock(tuple(sorted(own)), derived_from=ROOT)
                ]
                continue
            parent_set = set(self.index.sets[node.parent])
            shared_block = tuple(sorted(own & parent_set))
            fresh_block = tuple(sorted(own - parent_set))
            blocks = [PartitionBlock(shared_block, derived_from=node.parent)]
            if fresh_block:
                blocks.append(PartitionBlock(fresh_block, derived_from=ROOT))
            partitions[node.set_id] = blocks
        return partitions

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def summary(self) -> dict[str, object]:
        """Return a dictionary of plan statistics for benchmark tables."""
        return {
            "distinct_sets": self.num_sets,
            "candidate_edges": self.num_candidate_edges,
            "tree_weight": self.total_weight(),
            "scratch_weight_per_vertex": self.scratch_weight(),
            "scratch_weight_distinct": self.distinct_scratch_weight(),
            "shared_nodes": self.shared_node_count(),
            "share_ratio": round(self.share_ratio(), 4),
            "average_delta": round(self.average_delta_size(), 4),
            "duplicate_vertices": self.index.duplicate_vertex_count(),
        }

    def __repr__(self) -> str:
        return (
            f"<SharingPlan sets={self.num_sets} "
            f"share_ratio={self.share_ratio():.2f} "
            f"tree_weight={self.total_weight()}>"
        )
