"""Human-readable views of a sharing plan: partitions and the dendrogram.

The paper visualises its sharing plan twice: Fig. 3a lists the partition
``P(I(v))`` of every in-neighbour set (e.g. ``P(I(c)) = {I(a), {d}}``) and
Fig. 3b draws the accumulation of reusable partial sums as a hierarchical
clustering dendrogram.  These helpers render the same two views from a
:class:`~repro.core.plans.SharingPlan` — they exist for debugging, the
examples and the documentation, not for the hot path.
"""

from __future__ import annotations

from ..graph.digraph import DiGraph
from .plans import ROOT, SharingPlan

__all__ = ["describe_partitions", "format_dendrogram", "set_name"]


def set_name(graph: DiGraph, plan: SharingPlan, set_id: int) -> str:
    """Return a readable name for a distinct in-neighbour set.

    When a single vertex ``v`` owns the set the name is ``I(v)`` using the
    vertex's label (as in the paper's figures); when several vertices share
    the set, the first member is used and the multiplicity is appended.
    """
    members = plan.index.members[set_id]
    first = graph.label_of(members[0])
    if len(members) == 1:
        return f"I({first})"
    return f"I({first})[x{len(members)}]"


def _block_text(graph: DiGraph, vertices: tuple[int, ...]) -> str:
    labels = ", ".join(str(graph.label_of(vertex)) for vertex in vertices)
    return "{" + labels + "}"


def describe_partitions(graph: DiGraph, plan: SharingPlan) -> dict[str, str]:
    """Return the Fig. 3a table: ``set name -> partition description``.

    Blocks borrowed from a parent set are shown by the parent's name, fresh
    blocks by their vertex labels, e.g. ``P(I(c)) = {I(a), {d}}``.
    """
    descriptions: dict[str, str] = {}
    partitions = plan.partitions()
    for set_id in range(plan.num_sets):
        blocks = []
        for block in partitions[set_id]:
            if block.derived_from == ROOT:
                blocks.append(_block_text(graph, block.vertices))
            else:
                blocks.append(set_name(graph, plan, block.derived_from))
        descriptions[set_name(graph, plan, set_id)] = "{" + ", ".join(blocks) + "}"
    return descriptions


def format_dendrogram(graph: DiGraph, plan: SharingPlan) -> str:
    """Render the sharing tree as indented text (the Fig. 3b dendrogram).

    Each line shows how a set's partial sum is obtained: fresh sets list the
    vertices that are added together, derived sets show the parent plus the
    removed (``-``) and added (``+``) vertices of the Eq. 9 update.
    """
    lines: list[str] = ["(root) ∅"]

    def render(set_id: int, depth: int) -> None:
        node = plan.nodes[set_id]
        indent = "  " * depth
        name = set_name(graph, plan, set_id)
        if node.mode == "scratch":
            source = " + ".join(
                str(graph.label_of(vertex)) for vertex in plan.index.sets[set_id]
            )
            lines.append(f"{indent}├─ {name} = {source}")
        else:
            parent_name = set_name(graph, plan, node.parent)
            removed = "".join(
                f" - {graph.label_of(vertex)}" for vertex in node.removed
            )
            added = "".join(f" + {graph.label_of(vertex)}" for vertex in node.added)
            lines.append(f"{indent}├─ {name} = {parent_name}{removed}{added}")
        for child in plan.children_of(set_id):
            render(child, depth + 1)

    for top in plan.root_children:
        render(top, 1)
    return "\n".join(lines)
