"""Index of distinct in-neighbour sets and sharing-candidate generation.

``DMST-Reduce`` works on the family ``{I(v) : v ∈ V, I(v) ≠ ∅}``.  Distinct
vertices frequently have *identical* in-neighbour sets (pages of the same
host linking to the same navigation bar, co-authors of a single paper), and
identical sets trivially share their entire partial sum, so the index groups
vertices by in-neighbour set first and the rest of the pipeline operates on
*distinct* sets only.

The second job of this module is candidate generation for the transition-cost
graph ``G*``.  Computing all ``Θ(n²)`` pairwise costs, as the paper's
analysis assumes, is wasteful: an edge ``I(a) → I(b)`` can only beat the
from-scratch edge ``∅ → I(b)`` when the two sets share at least one vertex
(otherwise ``|I(a) ⊖ I(b)| ≥ |I(b)| > |I(b)| − 1``).  Sharing candidates are
therefore harvested from an inverted index ``w ↦ {sets containing w}``;
an optional exhaustive mode reproduces the paper's quadratic construction
for small graphs and for validation.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from ..exceptions import ConfigurationError
from ..graph.digraph import DiGraph
from .transition_cost import (
    TransitionEdge,
    scratch_cost,
    symmetric_difference_size,
)

__all__ = ["InNeighborIndex", "generate_candidate_edges", "CANDIDATE_STRATEGIES"]

CANDIDATE_STRATEGIES = ("common-neighbor", "exhaustive")


@dataclass(frozen=True)
class InNeighborIndex:
    """Grouping of vertices by (non-empty) in-neighbour set.

    Attributes
    ----------
    sets:
        Tuple of distinct non-empty in-neighbour sets, each a sorted tuple of
        vertex ids.  ``sets[i]`` is the ``i``-th distinct set.
    members:
        ``members[i]`` lists the vertices whose in-neighbour set equals
        ``sets[i]``.
    set_of_vertex:
        Length-``n`` array mapping every vertex to its distinct-set index, or
        ``-1`` for vertices with no in-neighbours.
    """

    sets: tuple[tuple[int, ...], ...]
    members: tuple[tuple[int, ...], ...]
    set_of_vertex: np.ndarray

    @classmethod
    def from_graph(cls, graph: DiGraph) -> "InNeighborIndex":
        """Build the index for ``graph``."""
        set_to_id: dict[tuple[int, ...], int] = {}
        members: list[list[int]] = []
        set_of_vertex = np.full(graph.num_vertices, -1, dtype=np.int64)
        for vertex in graph.vertices():
            in_set = graph.in_neighbors(vertex)
            if not in_set:
                continue
            set_id = set_to_id.get(in_set)
            if set_id is None:
                set_id = len(members)
                set_to_id[in_set] = set_id
                members.append([])
            members[set_id].append(vertex)
            set_of_vertex[vertex] = set_id
        ordered_sets = tuple(
            in_set for in_set, _ in sorted(set_to_id.items(), key=lambda kv: kv[1])
        )
        return cls(
            sets=ordered_sets,
            members=tuple(tuple(group) for group in members),
            set_of_vertex=set_of_vertex,
        )

    @property
    def num_sets(self) -> int:
        """Number of distinct non-empty in-neighbour sets."""
        return len(self.sets)

    def set_size(self, set_id: int) -> int:
        """Return ``|I|`` for the ``set_id``-th distinct set."""
        return len(self.sets[set_id])

    def total_in_degree(self) -> int:
        """Return ``Σ_v |I(v)|`` over all vertices (counting duplicates)."""
        return int(
            sum(len(self.sets[set_id]) * len(group)
                for set_id, group in enumerate(self.members))
        )

    def duplicate_vertex_count(self) -> int:
        """Number of vertices sharing an in-neighbour set with another vertex."""
        return sum(len(group) - 1 for group in self.members if len(group) > 1)


def generate_candidate_edges(
    index: InNeighborIndex,
    strategy: str = "common-neighbor",
    max_candidates_per_set: int = 16,
    max_posting_length: Optional[int] = 256,
) -> Iterator[TransitionEdge]:
    """Yield candidate edges of the transition-cost graph ``G*``.

    Node ids follow the convention of :class:`TransitionEdge`: node 0 is the
    root ``∅`` and node ``s + 1`` is the ``s``-th distinct set of ``index``.

    Parameters
    ----------
    index:
        The distinct in-neighbour-set index.
    strategy:
        ``"common-neighbor"`` (default) only pairs sets that share at least
        one vertex, harvested via an inverted index, keeping the strongest
        ``max_candidates_per_set`` sources per target.  ``"exhaustive"``
        enumerates every ordered pair with ``|source| ≤ |target|``, exactly
        as the paper's ``DMST-Reduce`` pseudo-code does.
    max_candidates_per_set:
        Cap on sharing candidates per target set (common-neighbor mode).
    max_posting_length:
        Posting lists longer than this (in-neighbours that appear in very
        many sets, i.e. hub vertices) are truncated to bound the candidate
        counting cost; ``None`` disables truncation.

    Yields
    ------
    TransitionEdge
        Root edges ``∅ → t`` for every distinct set (weight ``|I_t| − 1``)
        plus the sharing candidates.
    """
    if strategy not in CANDIDATE_STRATEGIES:
        raise ConfigurationError(
            f"unknown candidate strategy {strategy!r}; "
            f"expected one of {CANDIDATE_STRATEGIES}"
        )
    if max_candidates_per_set <= 0:
        raise ConfigurationError("max_candidates_per_set must be positive")

    num_sets = index.num_sets
    # Root edges: every set can always be built from scratch.
    for set_id in range(num_sets):
        yield TransitionEdge(
            source=0,
            target=set_id + 1,
            weight=scratch_cost(index.sets[set_id]),
            shared=False,
        )

    if strategy == "exhaustive":
        yield from _exhaustive_candidates(index)
        return
    yield from _common_neighbor_candidates(
        index, max_candidates_per_set, max_posting_length
    )


def _ordered_pair(index: InNeighborIndex, source_id: int, target_id: int) -> bool:
    """Whether the candidate edge ``source -> target`` respects the size order.

    The paper only evaluates ``TC_{I(a) -> I(b)}`` when ``|I(a)| <= |I(b)|``
    and, for equal sizes, fills only the upper triangle of its cost table
    (Fig. 2b) — i.e. one direction per unordered pair.  Following the same
    convention keeps the candidate graph acyclic (sizes never decrease along
    an edge, ids increase at equal size), which lets the directed-MST step
    finish in a single greedy pass.
    """
    source_size = index.set_size(source_id)
    target_size = index.set_size(target_id)
    if source_size != target_size:
        return source_size < target_size
    return source_id < target_id


def _exhaustive_candidates(index: InNeighborIndex) -> Iterator[TransitionEdge]:
    """Every ordered pair with ``|source| ≤ |target|`` (the paper's rule)."""
    as_sets = [set(in_set) for in_set in index.sets]
    for source_id in range(index.num_sets):
        for target_id in range(index.num_sets):
            if source_id == target_id:
                continue
            if not _ordered_pair(index, source_id, target_id):
                continue
            sym_diff = len(as_sets[source_id] ^ as_sets[target_id])
            from_scratch = scratch_cost(as_sets[target_id])
            yield TransitionEdge(
                source=source_id + 1,
                target=target_id + 1,
                weight=min(sym_diff, from_scratch),
                shared=sym_diff < from_scratch,
            )


def _common_neighbor_candidates(
    index: InNeighborIndex,
    max_candidates_per_set: int,
    max_posting_length: Optional[int],
) -> Iterator[TransitionEdge]:
    """Candidates limited to set pairs sharing at least one in-neighbour."""
    postings: dict[int, list[int]] = {}
    for set_id, in_set in enumerate(index.sets):
        for vertex in in_set:
            postings.setdefault(vertex, []).append(set_id)

    as_sets = [set(in_set) for in_set in index.sets]

    for target_id in range(index.num_sets):
        overlap_counts: Counter[int] = Counter()
        for vertex in index.sets[target_id]:
            posting = postings.get(vertex, ())
            if max_posting_length is not None and len(posting) > max_posting_length:
                posting = posting[:max_posting_length]
            for source_id in posting:
                if source_id != target_id and _ordered_pair(
                    index, source_id, target_id
                ):
                    overlap_counts[source_id] += 1
        from_scratch = scratch_cost(as_sets[target_id])
        for source_id, _ in overlap_counts.most_common(max_candidates_per_set):
            sym_diff = symmetric_difference_size(
                as_sets[source_id], as_sets[target_id]
            )
            yield TransitionEdge(
                source=source_id + 1,
                target=target_id + 1,
                weight=min(sym_diff, from_scratch),
                shared=sym_diff < from_scratch,
            )
