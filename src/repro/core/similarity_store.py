"""Sparse storage of SimRank results (threshold- or top-k-truncated).

The paper's memory discussion (Fig. 6d) presumes that on large graphs one
never keeps the dense ``n × n`` similarity matrix: after threshold sieving,
only the scores that survive — or only each vertex's top-k — are retained.
:class:`SimilarityStore` is that retained representation: a CSR matrix of the
surviving off-diagonal scores plus the implicit unit diagonal, with the query
operations the examples and workloads need (pair lookup, row retrieval,
top-k) and a compressed on-disk round trip via ``numpy``'s ``.npz`` format.
"""

from __future__ import annotations

from collections.abc import Hashable
from pathlib import Path
from typing import Optional, Union

import numpy as np
from scipy import sparse

from ..exceptions import ConfigurationError
from ..graph.digraph import DiGraph
from .result import SimRankResult

__all__ = ["SimilarityStore"]

PathLike = Union[str, Path]


class SimilarityStore:
    """Truncated, sparse view of an all-pairs similarity matrix.

    Build one with :meth:`from_result`, passing either a score ``threshold``
    (keep every off-diagonal score at or above it — the paper's sieving rule)
    or ``top_k`` (keep the k best scores per row), or both.  The diagonal is
    implicit and always 1.
    """

    def __init__(
        self,
        matrix: sparse.csr_matrix,
        graph: DiGraph,
        algorithm: str = "",
        damping: float = 0.0,
    ) -> None:
        if matrix.shape[0] != matrix.shape[1]:
            raise ConfigurationError("similarity matrix must be square")
        if matrix.shape[0] != graph.num_vertices:
            raise ConfigurationError(
                "similarity matrix size must match the graph's vertex count"
            )
        self._matrix = matrix.tocsr()
        self.graph = graph
        self.algorithm = algorithm
        self.damping = damping

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_result(
        cls,
        result: SimRankResult,
        threshold: float = 0.0,
        top_k: Optional[int] = None,
    ) -> "SimilarityStore":
        """Build a store from a dense :class:`SimRankResult`.

        Parameters
        ----------
        result:
            The dense result to truncate.
        threshold:
            Keep off-diagonal scores ``>= threshold`` (0 keeps every non-zero
            score).
        top_k:
            When given, additionally keep at most ``top_k`` scores per row
            (the largest ones).
        """
        if threshold < 0:
            raise ConfigurationError("threshold must be non-negative")
        if top_k is not None and top_k <= 0:
            raise ConfigurationError("top_k must be positive when given")
        scores = np.array(result.scores, copy=True)
        np.fill_diagonal(scores, 0.0)
        if threshold > 0.0:
            scores[scores < threshold] = 0.0
        if top_k is not None and top_k < scores.shape[1]:
            # Keep exactly the k largest entries per row (ties broken
            # arbitrarily); rows with fewer than k non-zero scores simply
            # keep what they have.
            keep = np.argpartition(scores, -top_k, axis=1)[:, -top_k:]
            mask = np.zeros(scores.shape, dtype=bool)
            mask[np.arange(scores.shape[0])[:, None], keep] = True
            scores[~mask] = 0.0
        matrix = sparse.csr_matrix(scores)
        matrix.eliminate_zeros()
        return cls(
            matrix,
            result.graph,
            algorithm=result.algorithm,
            damping=result.damping,
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Number of vertices covered by the store."""
        return self._matrix.shape[0]

    @property
    def num_stored_scores(self) -> int:
        """Number of retained off-diagonal scores."""
        return int(self._matrix.nnz)

    def memory_bytes(self) -> int:
        """Approximate in-memory footprint of the stored scores."""
        return int(
            self._matrix.data.nbytes
            + self._matrix.indices.nbytes
            + self._matrix.indptr.nbytes
        )

    def similarity(self, first: Hashable, second: Hashable) -> float:
        """Return the stored ``s(first, second)`` (0 if truncated away)."""
        a = self.graph.index_of(first)
        b = self.graph.index_of(second)
        if a == b:
            return 1.0
        return float(self._matrix[a, b])

    def similarity_row(self, vertex: Hashable) -> np.ndarray:
        """Return the (dense) stored row for ``vertex``, diagonal included."""
        index = self.graph.index_of(vertex)
        row = np.asarray(self._matrix.getrow(index).todense()).ravel()
        row[index] = 1.0
        return row

    def top_k(self, vertex: Hashable, k: int = 10) -> list[tuple[Hashable, float]]:
        """Return the ``k`` highest stored scores for ``vertex`` (self excluded)."""
        index = self.graph.index_of(vertex)
        row = self._matrix.getrow(index)
        order = sorted(
            zip(row.indices.tolist(), row.data.tolist()),
            key=lambda pair: (-pair[1], pair[0]),
        )
        return [
            (self.graph.label_of(candidate), float(score))
            for candidate, score in order[:k]
            if candidate != index
        ]

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: PathLike) -> None:
        """Write the store to ``path`` (a ``.npz`` file)."""
        path = Path(path)
        np.savez_compressed(
            path,
            data=self._matrix.data,
            indices=self._matrix.indices,
            indptr=self._matrix.indptr,
            shape=np.asarray(self._matrix.shape),
            algorithm=np.asarray(self.algorithm),
            damping=np.asarray(self.damping),
        )

    @classmethod
    def load(cls, path: PathLike, graph: DiGraph) -> "SimilarityStore":
        """Read a store written by :meth:`save`; the graph supplies labels."""
        path = Path(path)
        with np.load(path, allow_pickle=False) as archive:
            matrix = sparse.csr_matrix(
                (archive["data"], archive["indices"], archive["indptr"]),
                shape=tuple(archive["shape"]),
            )
            algorithm = str(archive["algorithm"])
            damping = float(archive["damping"])
        return cls(matrix, graph, algorithm=algorithm, damping=damping)

    def __repr__(self) -> str:
        return (
            f"<SimilarityStore n={self.num_vertices} "
            f"stored={self.num_stored_scores} "
            f"bytes={self.memory_bytes()}>"
        )
