"""Sparse storage of SimRank results (threshold- or top-k-truncated).

The paper's memory discussion (Fig. 6d) presumes that on large graphs one
never keeps the dense ``n × n`` similarity matrix: after threshold sieving,
only the scores that survive — or only each vertex's top-k — are retained.
:class:`SimilarityStore` is that retained representation: a CSR matrix of the
surviving off-diagonal scores plus the implicit unit diagonal, with the query
operations the examples and workloads need (pair lookup, row retrieval,
top-k) and a compressed on-disk round trip via ``numpy``'s ``.npz`` format.

The store doubles as the persisted index format of the online serving layer
(:mod:`repro.service`), which needs two row-granular mutations on top of the
read path: :meth:`invalidate_rows` (drop the scores of vertices whose
neighbourhood changed) and :meth:`merge_rows` (splice freshly recomputed
rows back in without rebuilding the whole matrix).
"""

from __future__ import annotations

import json
from collections.abc import Hashable, Sequence
from pathlib import Path
from typing import Optional, Union

import numpy as np
from scipy import sparse

from ..exceptions import ConfigurationError
from ..graph.digraph import DiGraph
from .result import SimRankResult

__all__ = ["SimilarityStore", "ranked_entries", "row_top_k"]

PathLike = Union[str, Path]


def _npz_path(path: PathLike) -> Path:
    """Normalise a store path to carry the ``.npz`` suffix.

    ``numpy.savez_compressed`` appends ``.npz`` to suffix-less paths on its
    own, which ``numpy.load`` does not mirror — so the normalisation must
    happen here, identically for :meth:`SimilarityStore.save` and
    :meth:`SimilarityStore.load`, or ``save(p)`` / ``load(p)`` breaks for
    any ``p`` without the suffix.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def row_top_k(
    row: np.ndarray, k: Optional[int], threshold: float = 0.0
) -> tuple[np.ndarray, np.ndarray]:
    """Return the ``(columns, values)`` of the ``k`` best scores in ``row``.

    Selection keeps strictly positive scores at or above ``threshold`` and
    orders candidates by ``(-score, column)`` — the deterministic tie-break
    every ranking path in the package uses — so a truncated row's prefix is
    always exactly the prefix of the full ranking.  The returned columns are
    sorted ascending (canonical CSR order).  ``k=None`` keeps every
    surviving score.
    """
    row = np.asarray(row, dtype=np.float64).ravel()
    keep = row > 0.0
    if threshold > 0.0:
        keep &= row >= threshold
    candidates = np.flatnonzero(keep)
    if k is not None and candidates.size > k:
        # (-score, column) order via lexsort: the last key is primary.
        order = np.lexsort((candidates, -row[candidates]))[:k]
        candidates = candidates[order]
    candidates = np.sort(candidates)
    return candidates.astype(np.int64), row[candidates]


def ranked_entries(
    row: np.ndarray, k: int, exclude: Optional[int] = None
) -> list[tuple[int, float]]:
    """Return the top-``k`` ``(column, score)`` entries of ``row``, ranked.

    This is the single implementation of the package's ranking semantics —
    :func:`repro.simrank_top_k`, the serving engine's on-demand tier and
    the engine facade all truncate through it, so a ranking means the same
    thing on every path:

    * candidates are ordered by ``(-score, column)`` (the deterministic
      tie-break of :func:`row_top_k`);
    * ``exclude`` (the query vertex, for ``include_self=False``) never
      appears;
    * zero-score columns pad the ranking in ascending column order — the
      exact ordering a full ``(-score, id)`` sort of the row produces,
      since every zero ties.

    **Short rankings.**  The result holds ``min(k, n - excluded)`` entries:
    on a graph with at most ``k`` (other) vertices the list is shorter
    than ``k``.  Entries beyond the query's reach carry score 0.0; entries
    beyond the vertex set do not exist.
    """
    row = np.asarray(row, dtype=np.float64).ravel()
    if exclude is not None and row[exclude] != 0.0:
        row = row.copy()
        row[exclude] = 0.0
    columns, values = row_top_k(row, k)
    # row_top_k returns canonical ascending-column CSR order; a ranking
    # wants (-score, column) order back.
    order = np.lexsort((columns, -values))
    entries = [
        (int(columns[position]), float(values[position])) for position in order
    ]
    if len(entries) < k:
        positive = set(int(column) for column in columns)
        for candidate in range(row.size):
            if len(entries) == k:
                break
            if candidate == exclude or candidate in positive:
                continue
            entries.append((candidate, 0.0))
    return entries


class SimilarityStore:
    """Truncated, sparse view of an all-pairs similarity matrix.

    Build one with :meth:`from_result`, passing either a score ``threshold``
    (keep every off-diagonal score at or above it — the paper's sieving rule)
    or ``top_k`` (keep the k best scores per row), or both.  The diagonal is
    implicit and always 1.
    """

    def __init__(
        self,
        matrix: sparse.csr_matrix,
        graph: DiGraph,
        algorithm: str = "",
        damping: float = 0.0,
        extra: Optional[dict[str, object]] = None,
    ) -> None:
        if matrix.shape[0] != matrix.shape[1]:
            raise ConfigurationError("similarity matrix must be square")
        if matrix.shape[0] != graph.num_vertices:
            raise ConfigurationError(
                "similarity matrix size must match the graph's vertex count"
            )
        self._matrix = matrix.tocsr()
        self.graph = graph
        self.algorithm = algorithm
        self.damping = damping
        self.extra: dict[str, object] = dict(extra) if extra else {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_result(
        cls,
        result: SimRankResult,
        threshold: float = 0.0,
        top_k: Optional[int] = None,
    ) -> "SimilarityStore":
        """Build a store from a dense :class:`SimRankResult`.

        Parameters
        ----------
        result:
            The dense result to truncate.
        threshold:
            Keep off-diagonal scores ``>= threshold`` (0 keeps every non-zero
            score).
        top_k:
            When given, additionally keep at most ``top_k`` scores per row
            (the largest ones).
        """
        if threshold < 0:
            raise ConfigurationError("threshold must be non-negative")
        if top_k is not None and top_k <= 0:
            raise ConfigurationError("top_k must be positive when given")
        scores = np.array(result.scores, copy=True)
        np.fill_diagonal(scores, 0.0)
        # Row-wise :func:`row_top_k` truncation: ties at the k-th position
        # resolve by vertex id, so every stored row is exactly a prefix of
        # the full deterministic ranking (rows with fewer than k surviving
        # scores simply keep what they have).
        n = scores.shape[0]
        columns_parts: list[np.ndarray] = []
        data_parts: list[np.ndarray] = []
        indptr = np.zeros(n + 1, dtype=np.int64)
        for vertex in range(n):
            columns, values = row_top_k(scores[vertex], top_k, threshold=threshold)
            columns_parts.append(columns)
            data_parts.append(values)
            indptr[vertex + 1] = indptr[vertex] + columns.size
        matrix = sparse.csr_matrix(
            (
                np.concatenate(data_parts) if data_parts else np.empty(0),
                np.concatenate(columns_parts)
                if columns_parts
                else np.empty(0, np.int64),
                indptr,
            ),
            shape=(n, n),
        )
        return cls(
            matrix,
            result.graph,
            algorithm=result.algorithm,
            damping=result.damping,
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def matrix(self) -> sparse.csr_matrix:
        """The stored off-diagonal scores as a CSR matrix (no copy).

        Exposed for whole-store comparisons (the scaling benchmark checks a
        parallel build against a serial one entry for entry) and for bulk
        analytics; mutate through :meth:`invalidate_rows` / :meth:`merge_rows`
        instead of writing to this matrix directly.
        """
        return self._matrix

    @property
    def num_vertices(self) -> int:
        """Number of vertices covered by the store."""
        return self._matrix.shape[0]

    @property
    def num_stored_scores(self) -> int:
        """Number of retained off-diagonal scores."""
        return int(self._matrix.nnz)

    def memory_bytes(self) -> int:
        """Approximate in-memory footprint of the stored scores."""
        return int(
            self._matrix.data.nbytes
            + self._matrix.indices.nbytes
            + self._matrix.indptr.nbytes
        )

    def similarity(self, first: Hashable, second: Hashable) -> float:
        """Return the stored ``s(first, second)`` (0 if truncated away)."""
        a = self.graph.index_of(first)
        b = self.graph.index_of(second)
        if a == b:
            return 1.0
        return float(self._matrix[a, b])

    def similarity_row(self, vertex: Hashable) -> np.ndarray:
        """Return the (dense) stored row for ``vertex``, diagonal included."""
        index = self.graph.index_of(vertex)
        row = np.asarray(self._matrix.getrow(index).todense()).ravel()
        row[index] = 1.0
        return row

    def top_k(self, vertex: Hashable, k: int = 10) -> list[tuple[Hashable, float]]:
        """Return the ``k`` best stored scores for ``vertex``, ranked.

        The ranking follows :func:`ranked_entries` exactly — ``(-score,
        vertex id)`` order, the query vertex excluded, zero-score vertices
        padding the tail in id order — so a store lookup, a served index
        row and an on-demand evaluation all mean the same thing by "top
        k".  (An earlier implementation filtered the query vertex *after*
        truncating to ``k`` and never padded, so rows storing an explicit
        diagonal came back short and sparse rows came back unpadded.)
        """
        index = self.graph.index_of(vertex)
        start, stop = self._matrix.indptr[index], self._matrix.indptr[index + 1]
        row = np.zeros(self.num_vertices, dtype=np.float64)
        row[self._matrix.indices[start:stop]] = self._matrix.data[start:stop]
        return [
            (self.graph.label_of(candidate), score)
            for candidate, score in ranked_entries(row, k, exclude=index)
        ]

    # ------------------------------------------------------------------ #
    # Row-granular mutation (the serving layer's incremental-update hooks)
    # ------------------------------------------------------------------ #
    def _ensure_writable(self) -> None:
        """Copy-on-write for read-only (memory-mapped) backing arrays.

        Stores opened from a durable catalog keep their CSR arrays as
        read-only views over ``np.load(mmap_mode="r")`` memmaps; the first
        in-place mutation materialises private writable copies so the
        on-disk base segment is never written through.
        """
        matrix = self._matrix
        if (
            matrix.data.flags.writeable
            and matrix.indices.flags.writeable
            and matrix.indptr.flags.writeable
        ):
            return
        self._matrix = sparse.csr_matrix(
            (
                np.array(matrix.data),
                np.array(matrix.indices),
                np.array(matrix.indptr),
            ),
            shape=matrix.shape,
        )

    def invalidate_rows(self, rows: Sequence[int]) -> int:
        """Drop every stored score in the given rows; return how many fell.

        Used by the serving layer when a graph mutation makes the stored
        rows of the affected vertices untrustworthy: the rows become empty
        (queries against them see only the implicit unit diagonal) until
        :meth:`merge_rows` splices refreshed scores back in.
        """
        indices = self._validate_rows(rows)
        if indices.size == 0:
            return 0
        self._ensure_writable()
        lengths = np.diff(self._matrix.indptr)
        hit = np.zeros(self.num_vertices, dtype=bool)
        hit[indices] = True
        mask = np.repeat(hit, lengths)
        dropped = int(np.count_nonzero(self._matrix.data[mask]))
        self._matrix.data[mask] = 0.0
        self._matrix.eliminate_zeros()
        return dropped

    def merge_rows(
        self,
        rows: Sequence[int],
        dense_rows: np.ndarray,
        top_k: Optional[int] = None,
        threshold: float = 0.0,
    ) -> None:
        """Replace the given rows with (truncated) freshly computed scores.

        Parameters
        ----------
        rows:
            Row indices to replace; one per row of ``dense_rows``.
        dense_rows:
            ``(len(rows), n)`` array of similarity rows.  Diagonal entries
            are ignored (the diagonal is implicit and always 1).
        top_k, threshold:
            Truncation applied to each refreshed row before it is stored,
            with the same semantics as :meth:`from_result`.
        """
        indices = self._validate_rows(rows)
        dense_rows = np.atleast_2d(np.asarray(dense_rows, dtype=np.float64))
        if dense_rows.shape != (indices.size, self.num_vertices):
            raise ConfigurationError(
                f"expected dense_rows of shape {(indices.size, self.num_vertices)}, "
                f"got {dense_rows.shape}"
            )
        parts: list[tuple[np.ndarray, np.ndarray]] = []
        for position, row_index in enumerate(indices):
            fresh = dense_rows[position].copy()
            fresh[row_index] = 0.0
            parts.append(row_top_k(fresh, top_k, threshold=threshold))
        self.merge_row_parts(indices, parts)

    def merge_row_parts(
        self,
        rows: Sequence[int],
        parts: Sequence[tuple[np.ndarray, np.ndarray]],
    ) -> None:
        """Replace rows with already-truncated ``(columns, values)`` parts.

        The sparse-input sibling of :meth:`merge_rows` — the durable
        catalog's delta replay splices persisted truncated rows straight
        in without densifying them first.  Each part must follow the
        :func:`row_top_k` convention (ascending columns, diagonal
        excluded).
        """
        indices = self._validate_rows(rows)
        if len(parts) != indices.size:
            raise ConfigurationError(
                f"expected {indices.size} row parts, got {len(parts)}"
            )
        if indices.size != np.unique(indices).size:
            raise ConfigurationError("rows to merge must be distinct")

        # Keep the untouched rows' entries, re-emit the replaced rows, and
        # rebuild the CSR once from COO parts — no per-row matrix surgery.
        lengths = np.diff(self._matrix.indptr)
        replaced = np.zeros(self.num_vertices, dtype=bool)
        replaced[indices] = True
        keep = ~np.repeat(replaced, lengths)
        kept_rows = np.repeat(np.arange(self.num_vertices), lengths)[keep]
        kept_cols = self._matrix.indices[keep]
        kept_data = self._matrix.data[keep]

        new_rows: list[np.ndarray] = [kept_rows]
        new_cols: list[np.ndarray] = [np.asarray(kept_cols, dtype=np.int64)]
        new_data: list[np.ndarray] = [kept_data]
        for row_index, (columns, values) in zip(indices, parts):
            columns = np.asarray(columns, dtype=np.int64).ravel()
            values = np.asarray(values, dtype=np.float64).ravel()
            if columns.size != values.size:
                raise ConfigurationError(
                    f"row part for row {row_index} has {columns.size} columns "
                    f"but {values.size} values"
                )
            if columns.size and (
                columns.min() < 0 or columns.max() >= self.num_vertices
            ):
                raise ConfigurationError(
                    f"row part for row {row_index} names columns outside "
                    f"[0, {self.num_vertices})"
                )
            new_rows.append(np.full(columns.size, row_index, dtype=np.int64))
            new_cols.append(columns)
            new_data.append(values)

        merged = sparse.coo_matrix(
            (
                np.concatenate(new_data),
                (np.concatenate(new_rows), np.concatenate(new_cols)),
            ),
            shape=self._matrix.shape,
        ).tocsr()
        merged.eliminate_zeros()
        self._matrix = merged

    def _validate_rows(self, rows: Sequence[int]) -> np.ndarray:
        indices = np.asarray(list(rows), dtype=np.int64).ravel()
        if indices.size and (
            indices.min() < 0 or indices.max() >= self.num_vertices
        ):
            raise ConfigurationError(
                f"row indices must lie in [0, {self.num_vertices}), got "
                f"range [{indices.min()}, {indices.max()}]"
            )
        return indices

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: PathLike) -> None:
        """Write the store to ``path`` (a ``.npz`` file).

        Paths without the ``.npz`` suffix gain it — symmetrically with
        :meth:`load`, so ``save(p)`` followed by ``load(p)`` round-trips
        for any path.
        """
        path = _npz_path(path)
        np.savez_compressed(
            path,
            data=self._matrix.data,
            indices=self._matrix.indices,
            indptr=self._matrix.indptr,
            shape=np.asarray(self._matrix.shape),
            algorithm=np.asarray(self.algorithm),
            damping=np.asarray(self.damping),
            extra=np.asarray(json.dumps(self.extra)),
        )

    @classmethod
    def load(cls, path: PathLike, graph: DiGraph) -> "SimilarityStore":
        """Read a store written by :meth:`save`; the graph supplies labels.

        The path is normalised exactly as :meth:`save` normalises it, so a
        suffix-less ``save(p)`` target loads back under the same ``p``.
        """
        path = _npz_path(path)
        with np.load(path, allow_pickle=False) as archive:
            matrix = sparse.csr_matrix(
                (archive["data"], archive["indices"], archive["indptr"]),
                shape=tuple(archive["shape"]),
            )
            algorithm = str(archive["algorithm"])
            damping = float(archive["damping"])
            # Stores written before the metadata field carry no "extra" key.
            extra = (
                json.loads(str(archive["extra"])) if "extra" in archive else {}
            )
        return cls(matrix, graph, algorithm=algorithm, damping=damping, extra=extra)

    def __repr__(self) -> str:
        return (
            f"<SimilarityStore n={self.num_vertices} "
            f"stored={self.num_stored_scores} "
            f"bytes={self.memory_bytes()}>"
        )
