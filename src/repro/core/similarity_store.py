"""Sparse storage of SimRank results (threshold- or top-k-truncated).

The paper's memory discussion (Fig. 6d) presumes that on large graphs one
never keeps the dense ``n × n`` similarity matrix: after threshold sieving,
only the scores that survive — or only each vertex's top-k — are retained.
:class:`SimilarityStore` is that retained representation: a CSR matrix of the
surviving off-diagonal scores plus the implicit unit diagonal, with the query
operations the examples and workloads need (pair lookup, row retrieval,
top-k) and a compressed on-disk round trip via ``numpy``'s ``.npz`` format.

The store doubles as the persisted index format of the online serving layer
(:mod:`repro.service`), which needs two row-granular mutations on top of the
read path: :meth:`invalidate_rows` (drop the scores of vertices whose
neighbourhood changed) and :meth:`merge_rows` (splice freshly recomputed
rows back in without rebuilding the whole matrix).
"""

from __future__ import annotations

import json
from collections.abc import Hashable, Sequence
from pathlib import Path
from typing import Optional, Union

import numpy as np
from scipy import sparse

from ..exceptions import ConfigurationError
from ..graph.digraph import DiGraph
from .result import SimRankResult

__all__ = ["SimilarityStore", "ranked_entries", "row_top_k"]

PathLike = Union[str, Path]


def row_top_k(
    row: np.ndarray, k: Optional[int], threshold: float = 0.0
) -> tuple[np.ndarray, np.ndarray]:
    """Return the ``(columns, values)`` of the ``k`` best scores in ``row``.

    Selection keeps strictly positive scores at or above ``threshold`` and
    orders candidates by ``(-score, column)`` — the deterministic tie-break
    every ranking path in the package uses — so a truncated row's prefix is
    always exactly the prefix of the full ranking.  The returned columns are
    sorted ascending (canonical CSR order).  ``k=None`` keeps every
    surviving score.
    """
    row = np.asarray(row, dtype=np.float64).ravel()
    keep = row > 0.0
    if threshold > 0.0:
        keep &= row >= threshold
    candidates = np.flatnonzero(keep)
    if k is not None and candidates.size > k:
        # (-score, column) order via lexsort: the last key is primary.
        order = np.lexsort((candidates, -row[candidates]))[:k]
        candidates = candidates[order]
    candidates = np.sort(candidates)
    return candidates.astype(np.int64), row[candidates]


def ranked_entries(
    row: np.ndarray, k: int, exclude: Optional[int] = None
) -> list[tuple[int, float]]:
    """Return the top-``k`` ``(column, score)`` entries of ``row``, ranked.

    This is the single implementation of the package's ranking semantics —
    :func:`repro.simrank_top_k`, the serving engine's on-demand tier and
    the engine facade all truncate through it, so a ranking means the same
    thing on every path:

    * candidates are ordered by ``(-score, column)`` (the deterministic
      tie-break of :func:`row_top_k`);
    * ``exclude`` (the query vertex, for ``include_self=False``) never
      appears;
    * zero-score columns pad the ranking in ascending column order — the
      exact ordering a full ``(-score, id)`` sort of the row produces,
      since every zero ties.

    **Short rankings.**  The result holds ``min(k, n - excluded)`` entries:
    on a graph with at most ``k`` (other) vertices the list is shorter
    than ``k``.  Entries beyond the query's reach carry score 0.0; entries
    beyond the vertex set do not exist.
    """
    row = np.asarray(row, dtype=np.float64).ravel()
    if exclude is not None and row[exclude] != 0.0:
        row = row.copy()
        row[exclude] = 0.0
    columns, values = row_top_k(row, k)
    # row_top_k returns canonical ascending-column CSR order; a ranking
    # wants (-score, column) order back.
    order = np.lexsort((columns, -values))
    entries = [
        (int(columns[position]), float(values[position])) for position in order
    ]
    if len(entries) < k:
        positive = set(int(column) for column in columns)
        for candidate in range(row.size):
            if len(entries) == k:
                break
            if candidate == exclude or candidate in positive:
                continue
            entries.append((candidate, 0.0))
    return entries


class SimilarityStore:
    """Truncated, sparse view of an all-pairs similarity matrix.

    Build one with :meth:`from_result`, passing either a score ``threshold``
    (keep every off-diagonal score at or above it — the paper's sieving rule)
    or ``top_k`` (keep the k best scores per row), or both.  The diagonal is
    implicit and always 1.
    """

    def __init__(
        self,
        matrix: sparse.csr_matrix,
        graph: DiGraph,
        algorithm: str = "",
        damping: float = 0.0,
        extra: Optional[dict[str, object]] = None,
    ) -> None:
        if matrix.shape[0] != matrix.shape[1]:
            raise ConfigurationError("similarity matrix must be square")
        if matrix.shape[0] != graph.num_vertices:
            raise ConfigurationError(
                "similarity matrix size must match the graph's vertex count"
            )
        self._matrix = matrix.tocsr()
        self.graph = graph
        self.algorithm = algorithm
        self.damping = damping
        self.extra: dict[str, object] = dict(extra) if extra else {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_result(
        cls,
        result: SimRankResult,
        threshold: float = 0.0,
        top_k: Optional[int] = None,
    ) -> "SimilarityStore":
        """Build a store from a dense :class:`SimRankResult`.

        Parameters
        ----------
        result:
            The dense result to truncate.
        threshold:
            Keep off-diagonal scores ``>= threshold`` (0 keeps every non-zero
            score).
        top_k:
            When given, additionally keep at most ``top_k`` scores per row
            (the largest ones).
        """
        if threshold < 0:
            raise ConfigurationError("threshold must be non-negative")
        if top_k is not None and top_k <= 0:
            raise ConfigurationError("top_k must be positive when given")
        scores = np.array(result.scores, copy=True)
        np.fill_diagonal(scores, 0.0)
        # Row-wise :func:`row_top_k` truncation: ties at the k-th position
        # resolve by vertex id, so every stored row is exactly a prefix of
        # the full deterministic ranking (rows with fewer than k surviving
        # scores simply keep what they have).
        n = scores.shape[0]
        columns_parts: list[np.ndarray] = []
        data_parts: list[np.ndarray] = []
        indptr = np.zeros(n + 1, dtype=np.int64)
        for vertex in range(n):
            columns, values = row_top_k(scores[vertex], top_k, threshold=threshold)
            columns_parts.append(columns)
            data_parts.append(values)
            indptr[vertex + 1] = indptr[vertex] + columns.size
        matrix = sparse.csr_matrix(
            (
                np.concatenate(data_parts) if data_parts else np.empty(0),
                np.concatenate(columns_parts)
                if columns_parts
                else np.empty(0, np.int64),
                indptr,
            ),
            shape=(n, n),
        )
        return cls(
            matrix,
            result.graph,
            algorithm=result.algorithm,
            damping=result.damping,
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def matrix(self) -> sparse.csr_matrix:
        """The stored off-diagonal scores as a CSR matrix (no copy).

        Exposed for whole-store comparisons (the scaling benchmark checks a
        parallel build against a serial one entry for entry) and for bulk
        analytics; mutate through :meth:`invalidate_rows` / :meth:`merge_rows`
        instead of writing to this matrix directly.
        """
        return self._matrix

    @property
    def num_vertices(self) -> int:
        """Number of vertices covered by the store."""
        return self._matrix.shape[0]

    @property
    def num_stored_scores(self) -> int:
        """Number of retained off-diagonal scores."""
        return int(self._matrix.nnz)

    def memory_bytes(self) -> int:
        """Approximate in-memory footprint of the stored scores."""
        return int(
            self._matrix.data.nbytes
            + self._matrix.indices.nbytes
            + self._matrix.indptr.nbytes
        )

    def similarity(self, first: Hashable, second: Hashable) -> float:
        """Return the stored ``s(first, second)`` (0 if truncated away)."""
        a = self.graph.index_of(first)
        b = self.graph.index_of(second)
        if a == b:
            return 1.0
        return float(self._matrix[a, b])

    def similarity_row(self, vertex: Hashable) -> np.ndarray:
        """Return the (dense) stored row for ``vertex``, diagonal included."""
        index = self.graph.index_of(vertex)
        row = np.asarray(self._matrix.getrow(index).todense()).ravel()
        row[index] = 1.0
        return row

    def top_k(self, vertex: Hashable, k: int = 10) -> list[tuple[Hashable, float]]:
        """Return the ``k`` highest stored scores for ``vertex`` (self excluded)."""
        index = self.graph.index_of(vertex)
        row = self._matrix.getrow(index)
        order = sorted(
            zip(row.indices.tolist(), row.data.tolist()),
            key=lambda pair: (-pair[1], pair[0]),
        )
        return [
            (self.graph.label_of(candidate), float(score))
            for candidate, score in order[:k]
            if candidate != index
        ]

    # ------------------------------------------------------------------ #
    # Row-granular mutation (the serving layer's incremental-update hooks)
    # ------------------------------------------------------------------ #
    def invalidate_rows(self, rows: Sequence[int]) -> int:
        """Drop every stored score in the given rows; return how many fell.

        Used by the serving layer when a graph mutation makes the stored
        rows of the affected vertices untrustworthy: the rows become empty
        (queries against them see only the implicit unit diagonal) until
        :meth:`merge_rows` splices refreshed scores back in.
        """
        indices = self._validate_rows(rows)
        if indices.size == 0:
            return 0
        lengths = np.diff(self._matrix.indptr)
        hit = np.zeros(self.num_vertices, dtype=bool)
        hit[indices] = True
        mask = np.repeat(hit, lengths)
        dropped = int(np.count_nonzero(self._matrix.data[mask]))
        self._matrix.data[mask] = 0.0
        self._matrix.eliminate_zeros()
        return dropped

    def merge_rows(
        self,
        rows: Sequence[int],
        dense_rows: np.ndarray,
        top_k: Optional[int] = None,
        threshold: float = 0.0,
    ) -> None:
        """Replace the given rows with (truncated) freshly computed scores.

        Parameters
        ----------
        rows:
            Row indices to replace; one per row of ``dense_rows``.
        dense_rows:
            ``(len(rows), n)`` array of similarity rows.  Diagonal entries
            are ignored (the diagonal is implicit and always 1).
        top_k, threshold:
            Truncation applied to each refreshed row before it is stored,
            with the same semantics as :meth:`from_result`.
        """
        indices = self._validate_rows(rows)
        dense_rows = np.atleast_2d(np.asarray(dense_rows, dtype=np.float64))
        if dense_rows.shape != (indices.size, self.num_vertices):
            raise ConfigurationError(
                f"expected dense_rows of shape {(indices.size, self.num_vertices)}, "
                f"got {dense_rows.shape}"
            )
        if indices.size != np.unique(indices).size:
            raise ConfigurationError("rows to merge must be distinct")

        # Keep the untouched rows' entries, re-emit the replaced rows, and
        # rebuild the CSR once from COO parts — no per-row matrix surgery.
        lengths = np.diff(self._matrix.indptr)
        replaced = np.zeros(self.num_vertices, dtype=bool)
        replaced[indices] = True
        keep = ~np.repeat(replaced, lengths)
        kept_rows = np.repeat(np.arange(self.num_vertices), lengths)[keep]
        kept_cols = self._matrix.indices[keep]
        kept_data = self._matrix.data[keep]

        new_rows: list[np.ndarray] = [kept_rows]
        new_cols: list[np.ndarray] = [kept_cols]
        new_data: list[np.ndarray] = [kept_data]
        for position, row_index in enumerate(indices):
            fresh = dense_rows[position].copy()
            fresh[row_index] = 0.0
            columns, values = row_top_k(fresh, top_k, threshold=threshold)
            new_rows.append(np.full(columns.size, row_index, dtype=np.int64))
            new_cols.append(columns)
            new_data.append(values)

        merged = sparse.coo_matrix(
            (
                np.concatenate(new_data),
                (np.concatenate(new_rows), np.concatenate(new_cols)),
            ),
            shape=self._matrix.shape,
        ).tocsr()
        merged.eliminate_zeros()
        self._matrix = merged

    def _validate_rows(self, rows: Sequence[int]) -> np.ndarray:
        indices = np.asarray(list(rows), dtype=np.int64).ravel()
        if indices.size and (
            indices.min() < 0 or indices.max() >= self.num_vertices
        ):
            raise ConfigurationError(
                f"row indices must lie in [0, {self.num_vertices}), got "
                f"range [{indices.min()}, {indices.max()}]"
            )
        return indices

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: PathLike) -> None:
        """Write the store to ``path`` (a ``.npz`` file)."""
        path = Path(path)
        np.savez_compressed(
            path,
            data=self._matrix.data,
            indices=self._matrix.indices,
            indptr=self._matrix.indptr,
            shape=np.asarray(self._matrix.shape),
            algorithm=np.asarray(self.algorithm),
            damping=np.asarray(self.damping),
            extra=np.asarray(json.dumps(self.extra)),
        )

    @classmethod
    def load(cls, path: PathLike, graph: DiGraph) -> "SimilarityStore":
        """Read a store written by :meth:`save`; the graph supplies labels."""
        path = Path(path)
        with np.load(path, allow_pickle=False) as archive:
            matrix = sparse.csr_matrix(
                (archive["data"], archive["indices"], archive["indptr"]),
                shape=tuple(archive["shape"]),
            )
            algorithm = str(archive["algorithm"])
            damping = float(archive["damping"])
            # Stores written before the metadata field carry no "extra" key.
            extra = (
                json.loads(str(archive["extra"])) if "extra" in archive else {}
            )
        return cls(matrix, graph, algorithm=algorithm, damping=damping, extra=extra)

    def __repr__(self) -> str:
        return (
            f"<SimilarityStore n={self.num_vertices} "
            f"stored={self.num_stored_scores} "
            f"bytes={self.memory_bytes()}>"
        )
