"""Transition costs between in-neighbour sets (Eq. 7 of the paper).

Given the cached partial sum over ``I(a)``, computing the partial sum over
``I(b)`` costs either ``|I(a) ⊖ I(b)|`` additions (apply the
symmetric-difference update of Eq. 9) or ``|I(b)| − 1`` additions (recompute
from scratch), whichever is smaller:

``TC_{I(a) → I(b)} = min(|I(a) ⊖ I(b)|, |I(b)| − 1)``.

These weights are the edge weights of the graph ``G*`` that ``DMST-Reduce``
builds; an edge is *shared* (tagged ``#`` in the paper's Fig. 2b) exactly
when the symmetric difference wins strictly.
"""

from __future__ import annotations

from collections.abc import Collection, Iterable
from dataclasses import dataclass

__all__ = [
    "symmetric_difference_size",
    "transition_cost",
    "is_sharing_profitable",
    "split_delta",
    "TransitionEdge",
    "scratch_cost",
]


def symmetric_difference_size(first: Collection[int], second: Collection[int]) -> int:
    """Return ``|first ⊖ second|`` treating the inputs as sets."""
    first_set = first if isinstance(first, (set, frozenset)) else set(first)
    second_set = second if isinstance(second, (set, frozenset)) else set(second)
    return len(first_set ^ second_set)


def scratch_cost(target_set: Collection[int]) -> int:
    """Return the from-scratch cost ``|target| − 1`` (0 for tiny sets)."""
    return max(len(target_set) - 1, 0)


def transition_cost(source_set: Collection[int], target_set: Collection[int]) -> int:
    """Return ``TC_{source → target}`` (Eq. 7)."""
    return min(
        symmetric_difference_size(source_set, target_set), scratch_cost(target_set)
    )


def is_sharing_profitable(
    source_set: Collection[int], target_set: Collection[int]
) -> bool:
    """Return whether deriving ``target`` from ``source`` beats recomputing.

    This is the condition of Prop. 3/4: ``|source ⊖ target| < |target| − 1``
    (the ``#`` tag in Fig. 2b).
    """
    return symmetric_difference_size(source_set, target_set) < scratch_cost(target_set)


def split_delta(
    source_set: Iterable[int], target_set: Iterable[int]
) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Return ``(removed, added) = (source \\ target, target \\ source)``.

    These are the index sets plugged into the Eq. 9 update; both are sorted
    for determinism.
    """
    source = set(source_set)
    target = set(target_set)
    return tuple(sorted(source - target)), tuple(sorted(target - source))


@dataclass(frozen=True)
class TransitionEdge:
    """One weighted edge of the transition-cost graph ``G*``.

    Attributes
    ----------
    source:
        Source node id in ``G*`` (0 denotes the root ``∅``; ``s ≥ 1`` denotes
        the ``(s−1)``-th distinct in-neighbour set).
    target:
        Target node id in ``G*`` (always ``≥ 1``).
    weight:
        The transition cost (Eq. 7).
    shared:
        Whether the edge represents genuine sharing (symmetric difference
        strictly cheaper than scratch), i.e. the paper's ``#`` tag.
    """

    source: int
    target: int
    weight: int
    shared: bool
