"""P-Rank (Zhao, Han, Sun — CIKM 2009): SimRank with in- *and* out-links.

The paper notes (Related Work) that because P-Rank's iterative paradigm is
"almost similar" to SimRank's, its partial-sums-sharing techniques carry over
directly.  P-Rank scores two vertices by a convex combination of in-link and
out-link structural similarity:

``r(a,b) = λ·C_in/(|I(a)||I(b)|)·ΣΣ r(i,j)  +  (1−λ)·C_out/(|O(a)||O(b)|)·ΣΣ r(o,p)``

with ``r(a,a) = 1`` and each half dropping out when the corresponding
neighbourhood is empty.  Setting ``λ = 1`` recovers SimRank exactly, which is
also how the implementation is tested.

Two solvers are provided: a matrix-form iteration (reference) and a
shared-sums variant that applies the OIP machinery to both directions by
running one sharing plan on the graph and one on its reverse.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.dmst_reduce import dmst_reduce
from ..core.instrumentation import Instrumentation
from ..core.iteration_bounds import conventional_iterations
from ..core.result import SimRankResult, validate_damping, validate_iterations
from ..core.sharing_engine import SharingEngine
from ..exceptions import ConfigurationError
from ..graph.digraph import DiGraph
from ..graph.matrices import backward_transition_matrix, forward_transition_matrix

__all__ = ["prank", "prank_shared"]


def _validate_lambda(weight: float) -> float:
    if not 0.0 <= weight <= 1.0:
        raise ConfigurationError(f"lambda weight must lie in [0, 1], got {weight}")
    return float(weight)


def prank(
    graph: DiGraph,
    damping_in: float = 0.6,
    damping_out: float = 0.6,
    lambda_weight: float = 0.5,
    iterations: Optional[int] = None,
    accuracy: float = 1e-3,
) -> SimRankResult:
    """Compute P-Rank by iterating its matrix form.

    Parameters
    ----------
    graph:
        Input graph.
    damping_in, damping_out:
        Damping factors ``C_in`` / ``C_out`` of the two recursions.
    lambda_weight:
        Mixing weight ``λ``; 1 restricts to in-links (SimRank), 0 to
        out-links ("reverse SimRank").
    iterations:
        Number of iterations; derived from ``accuracy`` and the larger
        damping factor when ``None``.
    accuracy:
        Target accuracy used when ``iterations`` is ``None``.
    """
    damping_in = validate_damping(damping_in)
    damping_out = validate_damping(damping_out)
    lambda_weight = _validate_lambda(lambda_weight)
    if iterations is None:
        iterations = conventional_iterations(
            accuracy, max(damping_in, damping_out)
        )
    iterations = validate_iterations(iterations)

    instrumentation = Instrumentation()
    n = graph.num_vertices
    with instrumentation.timer.phase("iterate"):
        backward = backward_transition_matrix(graph)
        backward_t = backward.T.tocsr()
        forward = forward_transition_matrix(graph)
        forward_t = forward.T.tocsr()
        scores = np.eye(n, dtype=np.float64)
        for _ in range(iterations):
            in_part = backward @ scores @ backward_t
            out_part = forward @ scores @ forward_t
            if hasattr(in_part, "todense"):  # pragma: no cover - sparse corner
                in_part = np.asarray(in_part.todense())
            if hasattr(out_part, "todense"):  # pragma: no cover - sparse corner
                out_part = np.asarray(out_part.todense())
            scores = (
                lambda_weight * damping_in * in_part
                + (1.0 - lambda_weight) * damping_out * out_part
            )
            np.fill_diagonal(scores, 1.0)
            instrumentation.operations.add("prank", 4 * graph.num_edges * n)

    return SimRankResult(
        scores=scores,
        graph=graph,
        algorithm="p-rank",
        damping=damping_in,
        iterations=iterations,
        instrumentation=instrumentation,
        extra={
            "damping_out": damping_out,
            "lambda": lambda_weight,
            "accuracy": accuracy,
        },
    )


def prank_shared(
    graph: DiGraph,
    damping_in: float = 0.6,
    damping_out: float = 0.6,
    lambda_weight: float = 0.5,
    iterations: Optional[int] = None,
    accuracy: float = 1e-3,
    max_candidates_per_set: int = 16,
) -> SimRankResult:
    """Compute P-Rank with partial-sums sharing on both link directions.

    The in-link half runs the shared-sums engine on the graph's sharing
    plan; the out-link half runs a second engine on the *reverse* graph
    (out-neighbour sets are in-neighbour sets of the reverse), demonstrating
    the paper's claim that the OIP machinery extends to P-Rank unchanged.
    """
    damping_in = validate_damping(damping_in)
    damping_out = validate_damping(damping_out)
    lambda_weight = _validate_lambda(lambda_weight)
    if iterations is None:
        iterations = conventional_iterations(
            accuracy, max(damping_in, damping_out)
        )
    iterations = validate_iterations(iterations)

    instrumentation = Instrumentation()
    forward_plan = dmst_reduce(
        graph,
        max_candidates_per_set=max_candidates_per_set,
        instrumentation=instrumentation,
    )
    reverse_graph = graph.reverse()
    reverse_plan = dmst_reduce(
        reverse_graph,
        max_candidates_per_set=max_candidates_per_set,
        instrumentation=instrumentation,
    )
    in_engine = SharingEngine(graph, forward_plan, instrumentation=instrumentation)
    out_engine = SharingEngine(
        reverse_graph, reverse_plan, instrumentation=instrumentation
    )

    scores = in_engine.initial_scores()
    with instrumentation.timer.phase("share_sums"):
        for _ in range(iterations):
            in_part = in_engine.iterate(scores, factor=damping_in, pin_diagonal=False)
            out_part = out_engine.iterate(
                scores, factor=damping_out, pin_diagonal=False
            )
            scores = lambda_weight * in_part + (1.0 - lambda_weight) * out_part
            np.fill_diagonal(scores, 1.0)

    return SimRankResult(
        scores=scores,
        graph=graph,
        algorithm="p-rank-shared",
        damping=damping_in,
        iterations=iterations,
        instrumentation=instrumentation,
        extra={
            "damping_out": damping_out,
            "lambda": lambda_weight,
            "accuracy": accuracy,
            "in_plan": forward_plan.summary(),
            "out_plan": reverse_plan.summary(),
        },
    )
