"""Extensions beyond plain SimRank (P-Rank, as anticipated by the paper)."""

from .prank import prank, prank_shared

__all__ = ["prank", "prank_shared"]
