"""repro — reproduction of "Towards Efficient SimRank Computation on Large Networks".

The package implements the two contributions of Yu, Lin and Zhang (ICDE
2013) — OIP-SR (SimRank with inner/outer partial-sums sharing over a
directed minimum spanning tree of in-neighbour sets) and OIP-DSR (the
differential, exponential-sum SimRank model) — together with every substrate
and baseline the paper's evaluation depends on: a graph toolkit with
generators standing in for the BERKSTAN / PATENT / DBLP datasets, the
psum-SR / mtx-SR / Monte-Carlo / naive baselines, the P-Rank extension,
ranking-quality metrics, and a benchmark harness that regenerates every
figure and table of the paper's Section V.

All solvers are also reachable through the unified dispatch entry point
:func:`simrank` (``simrank(graph, method="matrix", backend="sparse")``),
which selects both the algorithm and the compute backend
(:mod:`repro.core.backends`) by name; :func:`simrank_top_k` answers batched
top-k queries without materialising the all-pairs matrix.

On top of the solvers sits an online serving layer (:mod:`repro.service`):
:func:`build_index` precomputes a truncated all-pairs index offline and
:class:`SimilarityService` answers top-k query streams through a tiered
index → cache → micro-batched-compute path with incremental edge updates.

Quickstart
----------
>>> from repro import generators, oip_sr, oip_dsr, simrank
>>> graph = generators.web_graph(num_pages=200, num_hosts=8, seed=1)
>>> conventional = oip_sr(graph, damping=0.6, accuracy=1e-3)
>>> fast = oip_dsr(graph, damping=0.6, accuracy=1e-3)
>>> matrix = simrank(graph, method="matrix", backend="sparse", accuracy=1e-3)
>>> conventional.top_k(0, k=5)  # doctest: +SKIP

Serving
-------
>>> from repro import SimilarityService, build_index
>>> index = build_index(graph, index_k=20, accuracy=1e-3)
>>> service = SimilarityService(graph, index, accuracy=1e-3)
>>> service.top_k(0, k=5)  # doctest: +SKIP
"""

from ._version import __version__
from .api import available_methods, simrank, simrank_top_k
from .baselines import (
    matrix_simrank,
    monte_carlo_simrank,
    mtx_svd_simrank,
    naive_simrank,
    psum_simrank,
    single_pair_simrank,
    single_source_simrank,
    top_k_from_result,
    top_k_single_source,
)
from .core import (
    SharingPlan,
    SimilarityStore,
    SimRankBackend,
    SimRankResult,
    available_backends,
    conventional_iterations,
    differential_iterations_exact,
    differential_iterations_lambert,
    differential_iterations_log,
    differential_simrank,
    dmst_reduce,
    oip_dsr,
    oip_sr,
)
from .exceptions import (
    ConfigurationError,
    ConvergenceError,
    GraphBuildError,
    GraphError,
    ReproError,
    VertexNotFoundError,
)
from .extensions import prank, prank_shared
from .graph import (
    DiGraph,
    EdgeListGraph,
    GraphBuilder,
    from_edges,
    from_in_neighbor_sets,
)
from .graph import generators
from .parallel import ParallelExecutor, plan_shards, resolve_workers
from .service import (
    FingerprintIndex,
    SimilarityService,
    build_index,
    load_index,
    save_index,
)
from .workloads import load_dataset, syn_graph, zipf_query_stream

__all__ = sorted(
    [
        "ConfigurationError",
        "ConvergenceError",
        "DiGraph",
        "EdgeListGraph",
        "FingerprintIndex",
        "GraphBuildError",
        "GraphBuilder",
        "GraphError",
        "ReproError",
        "SharingPlan",
        "SimRankBackend",
        "SimRankResult",
        "SimilarityService",
        "SimilarityStore",
        "VertexNotFoundError",
        "__version__",
        "available_backends",
        "available_methods",
        "build_index",
        "conventional_iterations",
        "differential_iterations_exact",
        "differential_iterations_lambert",
        "differential_iterations_log",
        "differential_simrank",
        "dmst_reduce",
        "from_edges",
        "from_in_neighbor_sets",
        "generators",
        "load_dataset",
        "load_index",
        "ParallelExecutor",
        "matrix_simrank",
        "monte_carlo_simrank",
        "mtx_svd_simrank",
        "naive_simrank",
        "oip_dsr",
        "oip_sr",
        "plan_shards",
        "prank",
        "prank_shared",
        "psum_simrank",
        "resolve_workers",
        "save_index",
        "simrank",
        "simrank_top_k",
        "single_pair_simrank",
        "single_source_simrank",
        "syn_graph",
        "top_k_from_result",
        "top_k_single_source",
        "zipf_query_stream",
    ]
)
