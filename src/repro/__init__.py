"""repro — reproduction of "Towards Efficient SimRank Computation on Large Networks".

The package implements the two contributions of Yu, Lin and Zhang (ICDE
2013) — OIP-SR (SimRank with inner/outer partial-sums sharing over a
directed minimum spanning tree of in-neighbour sets) and OIP-DSR (the
differential, exponential-sum SimRank model) — together with every substrate
and baseline the paper's evaluation depends on: a graph toolkit with
generators standing in for the BERKSTAN / PATENT / DBLP datasets, the
psum-SR / mtx-SR / Monte-Carlo / naive baselines, the P-Rank extension,
ranking-quality metrics, and a benchmark harness that regenerates every
figure and table of the paper's Section V.

The primary public surface is the session-level engine API
(:mod:`repro.engine`): one :class:`Engine` per graph owns the shared state
every task needs — transition operator, worker pool, serving index,
Monte-Carlo fingerprints — and a cost-based planner selects the method,
backend, worker count and serving tier from the graph statistics and one
validated, JSON-round-trippable :class:`EngineConfig`.  The classic free
functions (:func:`simrank`, :func:`simrank_top_k`) remain as thin one-shot
wrappers over an ephemeral engine, bit-identical by construction.

On top of the solvers sits an online serving layer (:mod:`repro.service`):
:func:`build_index` precomputes a truncated all-pairs index offline and
:class:`SimilarityService` answers top-k query streams through a tiered
index → cache → micro-batched-compute path with incremental edge updates;
``engine.serve()`` wires one to the session's shared artifacts.

Quickstart
----------
>>> from repro import Engine, EngineConfig, generators
>>> graph = generators.web_graph(num_pages=200, num_hosts=8, seed=1)
>>> engine = Engine(graph, EngineConfig(damping=0.6, accuracy=1e-3))
>>> plan = engine.explain()            # what would run, and why
>>> scores = engine.all_pairs()        # builds the transition operator
>>> rankings = engine.top_k([0, 5])    # reuses it
>>> isinstance(engine.pair(0, 5), float)  # and so does this
True

Serving
-------
>>> service = engine.serve(warm=True)  # index tier on shared artifacts
>>> service.top_k(0, k=5)  # doctest: +SKIP

The paper's own algorithm remains a first-class method:

>>> from repro import oip_sr
>>> conventional = oip_sr(graph, damping=0.6, accuracy=1e-3)
>>> conventional.top_k(0, k=5)  # doctest: +SKIP
"""

from ._version import __version__
from .api import available_methods, simrank, simrank_top_k
from .catalog import IndexCatalog
from .engine import (
    Capabilities,
    Engine,
    EngineConfig,
    ExecutionPlan,
    GraphStats,
    TaskPlan,
)
from .baselines import (
    matrix_simrank,
    monte_carlo_simrank,
    mtx_svd_simrank,
    naive_simrank,
    psum_simrank,
    single_pair_simrank,
    single_source_simrank,
    top_k_from_result,
    top_k_single_source,
)
from .core import (
    SharingPlan,
    SimilarityStore,
    SimRankBackend,
    SimRankResult,
    available_backends,
    conventional_iterations,
    differential_iterations_exact,
    differential_iterations_lambert,
    differential_iterations_log,
    differential_simrank,
    dmst_reduce,
    oip_dsr,
    oip_sr,
)
from .exceptions import (
    ConfigurationError,
    ConvergenceError,
    GraphBuildError,
    GraphError,
    ReproError,
    VertexNotFoundError,
)
from .extensions import prank, prank_shared
from .graph import (
    DiGraph,
    EdgeListGraph,
    GraphBuilder,
    from_edges,
    from_in_neighbor_sets,
)
from .graph import generators
from .parallel import ParallelExecutor, plan_shards, resolve_workers
from .service import (
    ErrorCode,
    FingerprintIndex,
    QueryRequest,
    QueryResponse,
    ServeError,
    SimilarityService,
    build_index,
    load_index,
    save_index,
)
from .workloads import load_dataset, syn_graph, zipf_query_stream

__all__ = sorted(
    [
        "Capabilities",
        "ConfigurationError",
        "ConvergenceError",
        "DiGraph",
        "EdgeListGraph",
        "Engine",
        "EngineConfig",
        "ExecutionPlan",
        "GraphStats",
        "IndexCatalog",
        "TaskPlan",
        "FingerprintIndex",
        "GraphBuildError",
        "GraphBuilder",
        "GraphError",
        "ReproError",
        "SharingPlan",
        "ErrorCode",
        "QueryRequest",
        "QueryResponse",
        "ServeError",
        "SimRankBackend",
        "SimRankResult",
        "SimilarityService",
        "SimilarityStore",
        "VertexNotFoundError",
        "__version__",
        "available_backends",
        "available_methods",
        "build_index",
        "conventional_iterations",
        "differential_iterations_exact",
        "differential_iterations_lambert",
        "differential_iterations_log",
        "differential_simrank",
        "dmst_reduce",
        "from_edges",
        "from_in_neighbor_sets",
        "generators",
        "load_dataset",
        "load_index",
        "ParallelExecutor",
        "matrix_simrank",
        "monte_carlo_simrank",
        "mtx_svd_simrank",
        "naive_simrank",
        "oip_dsr",
        "oip_sr",
        "plan_shards",
        "prank",
        "prank_shared",
        "psum_simrank",
        "resolve_workers",
        "save_index",
        "simrank",
        "simrank_top_k",
        "single_pair_simrank",
        "single_source_simrank",
        "syn_graph",
        "top_k_from_result",
        "top_k_single_source",
        "zipf_query_stream",
    ]
)
