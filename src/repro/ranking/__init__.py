"""Ranking-quality metrics (NDCG, rank correlation, top-k comparisons)."""

from .correlation import (
    adjacent_inversions,
    kendall_tau,
    ranking_agreement,
    spearman_rho,
)
from .ndcg import dcg, graded_relevance_from_ranking, ndcg, ndcg_from_reference
from .topk_metrics import TopKComparison, compare_queries, compare_top_k

__all__ = [
    "adjacent_inversions",
    "kendall_tau",
    "ranking_agreement",
    "spearman_rho",
    "dcg",
    "graded_relevance_from_ranking",
    "ndcg",
    "ndcg_from_reference",
    "TopKComparison",
    "compare_queries",
    "compare_top_k",
]
