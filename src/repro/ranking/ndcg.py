"""Normalised Discounted Cumulative Gain (NDCG) — the paper's Fig. 6g metric.

The paper evaluates how well OIP-DSR preserves the ordering of OIP-SR using
``NDCG_p = (1 / IDCG_p) · Σ_{i=1}^{p} (2^{rel_i} − 1) / log₂(1 + i)``,
where ``rel_i`` is the graded relevance of the item the evaluated ranking
places at position ``i`` and ``IDCG_p`` normalises by the ideal ordering so a
perfect ranking scores 1.
"""

from __future__ import annotations

import math
from collections.abc import Hashable, Mapping, Sequence

from ..exceptions import ConfigurationError

__all__ = ["dcg", "ndcg", "ndcg_from_reference", "graded_relevance_from_ranking"]


def dcg(relevances: Sequence[float], p: int | None = None) -> float:
    """Return the discounted cumulative gain of a relevance sequence.

    ``relevances[i]`` is the graded relevance of the item at rank ``i + 1``;
    gains use the exponential form ``2^rel − 1`` exactly as in the paper.
    """
    if p is None:
        p = len(relevances)
    if p < 0:
        raise ConfigurationError("p must be non-negative")
    total = 0.0
    for position, relevance in enumerate(relevances[:p], start=1):
        total += (2.0**relevance - 1.0) / math.log2(position + 1.0)
    return total


def ndcg(relevances: Sequence[float], p: int | None = None) -> float:
    """Return NDCG@p of a relevance sequence (1.0 for an ideal ordering)."""
    if p is None:
        p = len(relevances)
    ideal = sorted(relevances, reverse=True)
    ideal_dcg = dcg(ideal, p)
    if ideal_dcg == 0.0:
        return 1.0 if dcg(relevances, p) == 0.0 else 0.0
    return dcg(relevances, p) / ideal_dcg


def graded_relevance_from_ranking(
    reference_ranking: Sequence[Hashable],
    num_grades: int = 5,
) -> dict[Hashable, float]:
    """Turn a reference (ground-truth) ranking into graded relevance labels.

    The paper's human evaluators produced graded judgements; our substitute
    derives grades from a reference ranking by splitting it into
    ``num_grades`` bands: items in the top band get the highest grade,
    the next band one grade lower, and so on.  Items outside the reference
    list have relevance 0.
    """
    if num_grades <= 0:
        raise ConfigurationError("num_grades must be positive")
    total = len(reference_ranking)
    grades: dict[Hashable, float] = {}
    if total == 0:
        return grades
    band_size = max(1, math.ceil(total / num_grades))
    for position, label in enumerate(reference_ranking):
        band = position // band_size
        grades[label] = float(max(num_grades - band, 1))
    return grades


def ndcg_from_reference(
    evaluated_ranking: Sequence[Hashable],
    relevance: Mapping[Hashable, float],
    p: int,
) -> float:
    """Return NDCG@p of ``evaluated_ranking`` against graded ``relevance``.

    The ideal DCG is computed from the relevance values themselves (their
    best possible ordering), so a ranking that reproduces the reference order
    of the relevant items scores exactly 1.
    """
    if p <= 0:
        raise ConfigurationError("p must be positive")
    gains = [float(relevance.get(label, 0.0)) for label in evaluated_ranking[:p]]
    ideal = sorted((float(value) for value in relevance.values()), reverse=True)[:p]
    ideal_dcg = dcg(ideal, p)
    if ideal_dcg == 0.0:
        return 1.0
    return dcg(gains, p) / ideal_dcg
