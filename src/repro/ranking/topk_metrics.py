"""Top-k comparison metrics between two SimRank results.

Convenience wrappers that take two :class:`~repro.core.result.SimRankResult`
objects (typically OIP-SR as the reference and OIP-DSR as the evaluated
model), extract the per-query rankings and compute the quality measures the
paper reports: NDCG@p, top-k overlap, Kendall's τ and adjacent inversions.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from dataclasses import dataclass

from ..core.result import SimRankResult
from .correlation import adjacent_inversions, kendall_tau, ranking_agreement
from .ndcg import graded_relevance_from_ranking, ndcg_from_reference

__all__ = ["TopKComparison", "compare_top_k", "compare_queries"]


@dataclass(frozen=True)
class TopKComparison:
    """Quality of an evaluated ranking against a reference ranking."""

    query: Hashable
    k: int
    ndcg: float
    overlap: float
    kendall: float
    inversions: int

    def as_dict(self) -> dict[str, object]:
        """Return the comparison as a flat dictionary for result tables."""
        return {
            "query": str(self.query),
            "k": self.k,
            "ndcg": round(self.ndcg, 4),
            "overlap": round(self.overlap, 4),
            "kendall": round(self.kendall, 4),
            "inversions": self.inversions,
        }


def compare_top_k(
    reference: SimRankResult,
    evaluated: SimRankResult,
    query: Hashable,
    k: int = 10,
) -> TopKComparison:
    """Compare the top-``k`` ranking of ``evaluated`` against ``reference``.

    The reference ranking plays the role of the paper's ground truth: its
    graded relevance is derived from the reference order (top band most
    relevant), and the evaluated ranking is scored against it with NDCG@k.
    """
    reference_entries = reference.top_k(query, k=k)
    evaluated_entries = evaluated.top_k(query, k=k)
    reference_labels = [label for label, _ in reference_entries]
    evaluated_labels = [label for label, _ in evaluated_entries]

    relevance = graded_relevance_from_ranking(reference_labels)
    ndcg_value = ndcg_from_reference(evaluated_labels, relevance, p=k)
    overlap = ranking_agreement(reference_labels, evaluated_labels, k=k)

    # Kendall's tau over the union of both top-k lists, scored by each model.
    union_labels = list(dict.fromkeys(reference_labels + evaluated_labels))
    reference_scores = [reference.similarity(query, label) for label in union_labels]
    evaluated_scores = [evaluated.similarity(query, label) for label in union_labels]
    tau = kendall_tau(reference_scores, evaluated_scores)
    inversions = adjacent_inversions(reference_labels, evaluated_labels)

    return TopKComparison(
        query=query,
        k=k,
        ndcg=ndcg_value,
        overlap=overlap,
        kendall=tau,
        inversions=inversions,
    )


def compare_queries(
    reference: SimRankResult,
    evaluated: SimRankResult,
    queries: Sequence[Hashable],
    k_values: Sequence[int] = (10, 30, 50),
) -> list[TopKComparison]:
    """Compare several queries at several cut-offs (the Fig. 6g sweep)."""
    comparisons: list[TopKComparison] = []
    for query in queries:
        for k in k_values:
            comparisons.append(compare_top_k(reference, evaluated, query, k=k))
    return comparisons
