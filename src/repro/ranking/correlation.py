"""Rank-correlation measures between two similarity rankings.

The paper argues that OIP-DSR "fairly preserves the relative order" of
conventional SimRank; besides NDCG (Fig. 6g) the natural statistics for that
claim are Kendall's τ and Spearman's ρ over the two score vectors, plus the
count of adjacent inversions used in the Fig. 6h discussion ("differs in one
inversion at two adjacent positions").
"""

from __future__ import annotations

import warnings
from collections.abc import Hashable, Sequence

import numpy as np
from scipy import stats

from ..exceptions import ConfigurationError

__all__ = [
    "kendall_tau",
    "spearman_rho",
    "adjacent_inversions",
    "ranking_agreement",
]


def kendall_tau(first_scores: Sequence[float], second_scores: Sequence[float]) -> float:
    """Return Kendall's τ-b between two score vectors over the same items."""
    if len(first_scores) != len(second_scores):
        raise ConfigurationError("score vectors must have equal length")
    if len(first_scores) < 2:
        return 1.0
    with warnings.catch_warnings():
        # Constant score vectors make the coefficient undefined; we report
        # full agreement in that case, so silence SciPy's warning.
        warnings.simplefilter("ignore")
        tau, _ = stats.kendalltau(
            np.asarray(first_scores), np.asarray(second_scores)
        )
    if np.isnan(tau):
        return 1.0
    return float(tau)


def spearman_rho(
    first_scores: Sequence[float], second_scores: Sequence[float]
) -> float:
    """Return Spearman's ρ between two score vectors over the same items."""
    if len(first_scores) != len(second_scores):
        raise ConfigurationError("score vectors must have equal length")
    if len(first_scores) < 2:
        return 1.0
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        rho, _ = stats.spearmanr(
            np.asarray(first_scores), np.asarray(second_scores)
        )
    if np.isnan(rho):
        return 1.0
    return float(rho)


def adjacent_inversions(
    reference: Sequence[Hashable], evaluated: Sequence[Hashable]
) -> int:
    """Count adjacent swaps needed to turn ``evaluated`` into ``reference``.

    Items absent from the reference are ignored.  This is the statistic the
    paper quotes for the top-30 co-author list ("differ in one inversion at
    two adjacent positions").
    """
    position = {label: rank for rank, label in enumerate(reference)}
    sequence = [position[label] for label in evaluated if label in position]
    inversions = 0
    # Bubble-sort count: number of adjacent transpositions equals the number
    # of (not necessarily adjacent) inverted pairs.
    for i in range(len(sequence)):
        for j in range(i + 1, len(sequence)):
            if sequence[i] > sequence[j]:
                inversions += 1
    return inversions


def ranking_agreement(
    reference: Sequence[Hashable], evaluated: Sequence[Hashable], k: int | None = None
) -> float:
    """Return the fraction of the top-``k`` reference items kept by ``evaluated``."""
    if k is None:
        k = len(reference)
    if k <= 0:
        raise ConfigurationError("k must be positive")
    reference_set = set(reference[:k])
    evaluated_set = set(evaluated[:k])
    if not reference_set:
        return 1.0
    return len(reference_set & evaluated_set) / len(reference_set)
