"""The unified SimRank entry point: ``simrank(graph, method=..., backend=...)``.

Every solver in the package — the paper's OIP-SR / OIP-DSR, the psum-SR /
mtx-SR / Monte-Carlo / naive baselines and the matrix-form solvers — is
reachable through one dispatch function, so benchmarks, the CLI and
downstream code select algorithms and compute backends by name instead of
importing solver modules.  The matrix-form methods additionally accept a
compute ``backend`` from :mod:`repro.core.backends` (``"dense"`` BLAS vs
``"sparse"`` CSR); per-vertex methods are backend-agnostic and reject an
explicit ``backend="sparse"`` rather than silently ignoring it.

Examples
--------
>>> from repro import simrank, simrank_top_k
>>> from repro.graph.generators import web_graph
>>> graph = web_graph(num_pages=200, num_hosts=8, seed=1)
>>> result = simrank(graph, method="matrix", backend="sparse", iterations=10)
>>> rankings = simrank_top_k(graph, queries=[0, 5], k=5)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Union

import numpy as np

from .baselines.matrix_sr import matrix_simrank
from .baselines.monte_carlo import monte_carlo_simrank
from .baselines.mtx_svd_sr import mtx_svd_simrank
from .baselines.naive import naive_simrank
from .baselines.psum_sr import psum_simrank
from .baselines.topk import RankedList
from .core.backends import SimRankBackend, available_backends, get_backend
from .core.diff_simrank import differential_simrank
from .core.instrumentation import Instrumentation
from .core.iteration_bounds import conventional_iterations
from .core.oip_dsr import oip_dsr
from .core.oip_sr import oip_sr
from .core.result import SimRankResult, validate_damping, validate_iterations
from .exceptions import ConfigurationError
from .extensions.prank import prank, prank_shared
from .parallel import ParallelExecutor, resolve_workers

__all__ = [
    "METHODS",
    "MethodSpec",
    "available_methods",
    "method_spec",
    "simrank",
    "simrank_top_k",
]


@dataclass(frozen=True)
class MethodSpec:
    """One dispatchable SimRank method.

    Attributes
    ----------
    name:
        Canonical method name.
    solver:
        The underlying solver callable (``solver(graph, **params)``).
    backends:
        Compute backends the method can honour.  Per-vertex methods iterate
        Python adjacency structures and are listed as ``("dense",)`` — their
        arithmetic is backend-independent.
    accepts_backend:
        Whether the solver takes a ``backend=`` keyword (only the
        matrix-form solver does today).
    accepts_workers:
        Whether the solver takes a ``workers=`` keyword for process-parallel
        execution (the matrix-form solver; per-vertex solvers iterate Python
        adjacency and stay serial).
    default_backend:
        Backend used when the caller passes ``backend=None``.
    needs_adjacency:
        Whether the solver iterates per-vertex adjacency (and therefore
        needs a full :class:`~repro.graph.digraph.DiGraph`); an
        :class:`~repro.graph.edgelist.EdgeListGraph` input is upgraded via
        ``to_digraph()`` before dispatch.  Matrix-only methods leave the
        edge list untouched.
    """

    name: str
    solver: Callable[..., SimRankResult]
    backends: tuple[str, ...] = ("dense",)
    accepts_backend: bool = False
    accepts_workers: bool = False
    default_backend: Optional[str] = None
    needs_adjacency: bool = True


METHODS: dict[str, MethodSpec] = {
    spec.name: spec
    for spec in (
        MethodSpec(
            name="matrix",
            solver=matrix_simrank,
            backends=("dense", "sparse"),
            accepts_backend=True,
            accepts_workers=True,
            default_backend="sparse",
            needs_adjacency=False,
        ),
        MethodSpec(
            name="mtx-svd",
            solver=mtx_svd_simrank,
            backends=("sparse",),
            needs_adjacency=False,
        ),
        MethodSpec(name="oip-sr", solver=oip_sr),
        MethodSpec(name="oip-dsr", solver=oip_dsr),
        MethodSpec(name="psum", solver=psum_simrank),
        MethodSpec(name="naive", solver=naive_simrank),
        MethodSpec(name="monte-carlo", solver=monte_carlo_simrank),
        MethodSpec(
            name="diff-matrix", solver=differential_simrank, needs_adjacency=False
        ),
        MethodSpec(name="p-rank", solver=prank),
        MethodSpec(name="p-rank-shared", solver=prank_shared),
    )
}
"""Registry of dispatchable methods, keyed by canonical name."""

_ALIASES = {
    "matrix-sr": "matrix",
    "mtx-sr": "mtx-svd",
    "psum-sr": "psum",
}


def available_methods() -> tuple[str, ...]:
    """Return the canonical method names, sorted."""
    return tuple(sorted(METHODS))


def method_spec(method: str) -> MethodSpec:
    """Resolve ``method`` (canonical name or alias) to its :class:`MethodSpec`."""
    canonical = _ALIASES.get(method, method)
    try:
        return METHODS[canonical]
    except KeyError:
        raise ConfigurationError(
            f"unknown method {method!r}; available: {', '.join(available_methods())}"
        ) from None


def _resolve_backend(spec: MethodSpec, backend) -> Optional[str]:
    if backend is None:
        return spec.default_backend
    name = backend.name if isinstance(backend, SimRankBackend) else backend
    if name not in available_backends():
        raise ConfigurationError(
            f"unknown backend {name!r}; available: {', '.join(available_backends())}"
        )
    # Methods that forward `backend=` accept any registered backend (that is
    # the plug-in point); only backend-agnostic methods pin a declared set.
    if not spec.accepts_backend and name not in spec.backends:
        raise ConfigurationError(
            f"method {spec.name!r} does not support backend {name!r}; "
            f"it supports: {', '.join(spec.backends)}"
        )
    return name


def simrank(
    graph,
    method: str = "matrix",
    backend: Union[str, SimRankBackend, None] = None,
    workers: Optional[int] = None,
    **params,
) -> SimRankResult:
    """Compute SimRank on ``graph`` with the named method and backend.

    Parameters
    ----------
    graph:
        A :class:`~repro.graph.digraph.DiGraph` (any method) or an
        :class:`~repro.graph.edgelist.EdgeListGraph` (matrix-form methods).
    method:
        One of :func:`available_methods` or an alias (``"matrix-sr"``,
        ``"mtx-sr"``, ``"psum-sr"``).
    backend:
        Compute backend (``"dense"`` or ``"sparse"``) for methods that
        support one; ``None`` picks the method's default.  Requesting a
        backend the method cannot honour raises
        :class:`~repro.exceptions.ConfigurationError`.
    workers:
        Process-parallel worker count for methods that support it
        (``method="matrix"``); ``None``/1 is serial, ``0``/negative means
        all cores.  Requesting parallelism from a serial-only method raises
        :class:`~repro.exceptions.ConfigurationError` rather than silently
        running serial.
    **params:
        Forwarded verbatim to the underlying solver (``damping``,
        ``iterations``, ``accuracy``, ...).
    """
    spec = method_spec(method)
    resolved = _resolve_backend(spec, backend)
    if spec.accepts_backend and resolved is not None:
        params["backend"] = resolved
    if workers is not None:
        if spec.accepts_workers:
            params["workers"] = workers
        elif resolve_workers(workers) > 1:
            raise ConfigurationError(
                f"method {spec.name!r} does not support parallel execution; "
                "methods accepting workers: "
                + ", ".join(
                    sorted(name for name, s in METHODS.items() if s.accepts_workers)
                )
            )
    if spec.needs_adjacency and hasattr(graph, "to_digraph"):
        graph = graph.to_digraph()
    return spec.solver(graph, **params)


def simrank_top_k(
    graph,
    queries,
    k: int = 10,
    damping: float = 0.6,
    iterations: Optional[int] = None,
    accuracy: float = 1e-3,
    backend: Union[str, SimRankBackend, None] = None,
    include_self: bool = False,
    workers: Optional[int] = None,
    instrumentation: Optional[Instrumentation] = None,
) -> list[RankedList]:
    """Answer a batch of top-``k`` queries without materialising all pairs.

    The whole batch shares one transition operator and one series evaluation
    (:meth:`~repro.core.backends.SimRankBackend.similarity_rows`), so memory
    stays ``O(K · n · |queries|)`` — the single-source/top-k workload path
    the paper's quality experiments (Fig. 6g/6h) issue.  Scores follow the
    matrix-form convention and match the full-matrix answers up to the
    series-truncation tail ``C^{K+1}``.

    Parameters
    ----------
    graph:
        Input graph (:class:`~repro.graph.digraph.DiGraph` or
        :class:`~repro.graph.edgelist.EdgeListGraph`).
    queries:
        A sequence of query vertices (labels or ids).
    k:
        Ranking length per query.
    damping, iterations, accuracy:
        As for :func:`simrank`; ``iterations`` defaults to the conventional
        bound for ``accuracy``.
    backend:
        Compute backend used for the series evaluation; ``None`` picks the
        matrix method's default (the same convention as :func:`simrank`).
    include_self:
        Whether the query vertex itself may appear in its ranking.
    workers:
        Process-parallel worker count for the series evaluation
        (``None``/1 = serial).  Query shards are merged in submission
        order, so rankings never depend on the worker count.
    instrumentation:
        Optional instrumentation collector to record costs into.
    """
    damping = validate_damping(damping)
    if iterations is None:
        iterations = conventional_iterations(accuracy, damping)
    iterations = validate_iterations(iterations)
    if isinstance(queries, (str, bytes)) or not isinstance(
        queries, (Sequence, np.ndarray)
    ):
        queries = [queries]

    if backend is None:
        backend = METHODS["matrix"].default_backend
    engine = get_backend(backend)
    indices = np.array([graph.index_of(query) for query in queries], dtype=np.int64)
    transition = engine.transition(graph)
    if resolve_workers(workers) > 1:
        with ParallelExecutor(
            transition,
            damping=damping,
            iterations=iterations,
            backend=engine,
            workers=workers,
        ) as executor:
            rows = executor.similarity_rows(
                indices, instrumentation=instrumentation
            )
    else:
        rows = engine.similarity_rows(
            transition,
            indices,
            damping=damping,
            iterations=iterations,
            instrumentation=instrumentation,
        )

    vertex_ids = np.arange(transition.n)
    rankings: list[RankedList] = []
    for position, query in enumerate(queries):
        row = rows[position]
        # Vectorised (-score, id) ordering: lexsort's last key is primary.
        order = np.lexsort((vertex_ids, -row))
        entries: list[tuple[object, float]] = []
        for candidate in order:
            candidate = int(candidate)
            if not include_self and candidate == int(indices[position]):
                continue
            entries.append((graph.label_of(candidate), float(row[candidate])))
            if len(entries) == k:
                break
        rankings.append(RankedList(query=query, entries=tuple(entries)))
    return rankings
