"""The unified SimRank entry points: ``simrank()`` and ``simrank_top_k()``.

Every solver in the package — the paper's OIP-SR / OIP-DSR, the psum-SR /
mtx-SR / Monte-Carlo / naive baselines and the matrix-form solvers — is
reachable through one dispatch function, so benchmarks, the CLI and
downstream code select algorithms and compute backends by name instead of
importing solver modules.

Methods register a :class:`~repro.engine.capabilities.Capabilities` record
describing what they can do (task shapes, honourable backends, parallelism,
adjacency needs); the cost-based planner in :mod:`repro.engine` reads those
declarations when it chooses an execution plan.  Both free functions are
thin one-shot wrappers over an ephemeral :class:`~repro.engine.Engine`
session and return answers bit-identical to the engine's — long-lived
callers should hold an ``Engine`` instead, which reuses the transition
operator and worker pool across calls.

Examples
--------
>>> from repro import simrank, simrank_top_k
>>> from repro.graph.generators import web_graph
>>> graph = web_graph(num_pages=200, num_hosts=8, seed=1)
>>> result = simrank(graph, method="matrix", backend="sparse", iterations=10)
>>> rankings = simrank_top_k(graph, queries=[0, 5], k=5)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from .baselines.matrix_sr import matrix_simrank
from .baselines.monte_carlo import monte_carlo_simrank
from .baselines.mtx_svd_sr import mtx_svd_simrank
from .baselines.naive import naive_simrank
from .baselines.psum_sr import psum_simrank
from .baselines.topk import RankedList
from .core.backends import SimRankBackend, available_backends
from .core.diff_simrank import differential_simrank
from .core.instrumentation import Instrumentation
from .core.oip_dsr import oip_dsr
from .core.oip_sr import oip_sr
from .core.result import SimRankResult
from .engine.capabilities import MATRIX_TASKS, Capabilities
from .engine.config import EngineConfig
from .exceptions import ConfigurationError
from .extensions.prank import prank, prank_shared

__all__ = [
    "METHODS",
    "MethodSpec",
    "available_methods",
    "method_spec",
    "register_method",
    "simrank",
    "simrank_top_k",
]


@dataclass(frozen=True)
class MethodSpec:
    """One dispatchable SimRank method: a solver plus its declared capabilities.

    Attributes
    ----------
    name:
        Canonical method name.
    solver:
        The underlying solver callable (``solver(graph, **params)``).
    capabilities:
        The method's :class:`~repro.engine.capabilities.Capabilities`
        declaration — which task shapes it executes, which backends it can
        honour, whether it parallelises, whether it needs Python adjacency,
        whether it can reuse a prebuilt transition operator.  The planner
        and the dispatch layer read *only* this record; there are no
        per-method special cases.
    """

    name: str
    solver: Callable[..., SimRankResult]
    capabilities: Capabilities = Capabilities()

    # Convenience accessors, mirroring the capability record.
    @property
    def backends(self) -> tuple[str, ...]:
        return self.capabilities.backends

    @property
    def accepts_backend(self) -> bool:
        return self.capabilities.accepts_backend

    @property
    def accepts_workers(self) -> bool:
        return self.capabilities.accepts_workers

    @property
    def default_backend(self) -> Optional[str]:
        return self.capabilities.default_backend

    @property
    def needs_adjacency(self) -> bool:
        return self.capabilities.needs_adjacency


METHODS: dict[str, MethodSpec] = {}
"""Registry of dispatchable methods, keyed by canonical name."""


def register_method(spec: MethodSpec) -> MethodSpec:
    """Register ``spec`` (replacing any same-named method)."""
    METHODS[spec.name] = spec
    return spec


register_method(
    MethodSpec(
        name="matrix",
        solver=matrix_simrank,
        capabilities=Capabilities(
            tasks=MATRIX_TASKS,
            backends=("dense", "sparse"),
            accepts_backend=True,
            accepts_workers=True,
            needs_adjacency=False,
            default_backend="sparse",
            shares_transition=True,
        ),
    )
)
register_method(
    MethodSpec(
        name="mtx-svd",
        solver=mtx_svd_simrank,
        capabilities=Capabilities(backends=("sparse",), needs_adjacency=False),
    )
)
register_method(
    MethodSpec(
        name="oip-sr",
        solver=oip_sr,
        capabilities=Capabilities(uses_partial_sums=True),
    )
)
register_method(
    MethodSpec(
        name="oip-dsr",
        solver=oip_dsr,
        capabilities=Capabilities(uses_partial_sums=True),
    )
)
register_method(MethodSpec(name="psum", solver=psum_simrank))
register_method(MethodSpec(name="naive", solver=naive_simrank))
register_method(MethodSpec(name="monte-carlo", solver=monte_carlo_simrank))
register_method(
    MethodSpec(
        name="diff-matrix",
        solver=differential_simrank,
        capabilities=Capabilities(needs_adjacency=False),
    )
)
register_method(MethodSpec(name="p-rank", solver=prank))
register_method(MethodSpec(name="p-rank-shared", solver=prank_shared))

_ALIASES = {
    "matrix-sr": "matrix",
    "mtx-sr": "mtx-svd",
    "psum-sr": "psum",
}


def available_methods() -> tuple[str, ...]:
    """Return the canonical method names, sorted."""
    return tuple(sorted(METHODS))


def method_spec(method: str) -> MethodSpec:
    """Resolve ``method`` (canonical name or alias) to its :class:`MethodSpec`."""
    canonical = _ALIASES.get(method, method)
    try:
        return METHODS[canonical]
    except KeyError:
        raise ConfigurationError(
            f"unknown method {method!r}; available: {', '.join(available_methods())}"
        ) from None


def _resolve_backend(spec: MethodSpec, backend) -> Optional[str]:
    """The one backend resolver every entry point shares.

    ``None`` means the method default; instances resolve to their name;
    unknown names raise :class:`~repro.exceptions.ConfigurationError`, as
    does naming a backend a backend-agnostic method cannot honour.
    """
    if backend is None:
        return spec.default_backend
    name = backend.name if isinstance(backend, SimRankBackend) else backend
    if name not in available_backends():
        raise ConfigurationError(
            f"unknown backend {name!r}; available: {', '.join(available_backends())}"
        )
    # Methods that forward `backend=` accept any registered backend (that is
    # the plug-in point); only backend-agnostic methods pin a declared set.
    if not spec.accepts_backend and name not in spec.backends:
        raise ConfigurationError(
            f"method {spec.name!r} does not support backend {name!r}; "
            f"it supports: {', '.join(spec.backends)}"
        )
    return name


def simrank(
    graph,
    method: str = "matrix",
    backend: Union[str, SimRankBackend, None] = None,
    workers: Optional[int] = None,
    **params,
) -> SimRankResult:
    """Compute SimRank on ``graph`` with the named method and backend.

    A one-shot wrapper over an ephemeral :class:`~repro.engine.Engine`
    session — answers are bit-identical to ``Engine(graph,
    EngineConfig(method=..., backend=..., workers=...)).all_pairs(**params)``.
    Callers issuing several computations over one graph should hold an
    engine instead and let it reuse the transition operator.

    Parameters
    ----------
    graph:
        A :class:`~repro.graph.digraph.DiGraph` (any method) or an
        :class:`~repro.graph.edgelist.EdgeListGraph` (matrix-form methods;
        upgraded via ``to_digraph()`` for per-vertex methods).
    method:
        One of :func:`available_methods` or an alias (``"matrix-sr"``,
        ``"mtx-sr"``, ``"psum-sr"``).
    backend:
        Compute backend (``"dense"`` or ``"sparse"``) for methods that
        support one; ``None`` picks the method's default.  Requesting a
        backend the method cannot honour raises
        :class:`~repro.exceptions.ConfigurationError`.
    workers:
        Process-parallel worker count for methods that support it
        (``method="matrix"``); ``None``/1 is serial, ``0``/negative means
        all cores.  Requesting parallelism from a serial-only method raises
        :class:`~repro.exceptions.ConfigurationError` rather than silently
        running serial.
    **params:
        Forwarded verbatim to the underlying solver (``damping``,
        ``iterations``, ``accuracy``, ...).
    """
    from .engine.engine import Engine  # lazy: api <-> engine import seam

    spec = method_spec(method)
    resolved = _resolve_backend(spec, backend)
    config = EngineConfig(method=spec.name, backend=resolved, workers=workers)
    with Engine(graph, config) as engine:
        return engine.all_pairs(**params)


def simrank_top_k(
    graph,
    queries,
    k: int = 10,
    damping: float = 0.6,
    iterations: Optional[int] = None,
    accuracy: float = 1e-3,
    backend: Union[str, SimRankBackend, None] = None,
    include_self: bool = False,
    workers: Optional[int] = None,
    instrumentation: Optional[Instrumentation] = None,
) -> list[RankedList]:
    """Answer a batch of top-``k`` queries without materialising all pairs.

    A one-shot wrapper over an ephemeral :class:`~repro.engine.Engine`
    session (see :meth:`~repro.engine.Engine.top_k`).  The whole batch
    shares one transition operator and one series evaluation
    (:meth:`~repro.core.backends.SimRankBackend.similarity_rows`), so memory
    stays ``O(K · n · |queries|)`` — the single-source/top-k workload path
    the paper's quality experiments (Fig. 6g/6h) issue.  Scores follow the
    matrix-form convention and match the full-matrix answers up to the
    series-truncation tail ``C^{K+1}``; ties break by ``(-score, vertex
    id)`` through the shared :func:`~repro.core.similarity_store
    .ranked_entries` truncation, the same implementation the serving index
    and store use.

    **Short rankings.**  A ranking holds at most ``n`` entries (``n − 1``
    with ``include_self=False``): querying a graph with at most ``k``
    other vertices returns *fewer than* ``k`` entries.  Vertices the query
    cannot reach still appear, with score exactly 0.0, in ascending
    vertex-id order; entries beyond the vertex set are never invented.

    Parameters
    ----------
    graph:
        Input graph (:class:`~repro.graph.digraph.DiGraph` or
        :class:`~repro.graph.edgelist.EdgeListGraph`).
    queries:
        A sequence of query vertices (labels or ids).
    k:
        Ranking length per query.
    damping, iterations, accuracy:
        As for :func:`simrank`; ``iterations`` defaults to the conventional
        bound for ``accuracy``.
    backend:
        Compute backend used for the series evaluation; ``None`` picks the
        matrix method's default.  Resolution goes through the same
        validator as :func:`simrank`, so an unknown backend raises
        :class:`~repro.exceptions.ConfigurationError` here too.
    include_self:
        Whether the query vertex itself may appear in its ranking.
    workers:
        Process-parallel worker count for the series evaluation
        (``None``/1 = serial).  Query shards are merged in submission
        order, so rankings never depend on the worker count.
    instrumentation:
        Optional instrumentation collector to record costs into.
    """
    from .engine.engine import Engine  # lazy: api <-> engine import seam

    resolved = _resolve_backend(METHODS["matrix"], backend)
    config = EngineConfig(
        method="matrix",
        backend=resolved,
        damping=damping,
        iterations=iterations,
        accuracy=accuracy,
        workers=workers,
    )
    with Engine(graph, config) as engine:
        return engine.top_k(
            queries,
            k=k,
            include_self=include_self,
            instrumentation=instrumentation,
        )
