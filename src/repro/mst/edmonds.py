"""Minimum spanning arborescence (directed MST) — Chu-Liu/Edmonds' algorithm.

The paper's ``DMST-Reduce`` procedure (Section III-C) calls an off-the-shelf
directed-MST routine (Gabow et al. [7]) on the transition-cost graph ``G*``
to obtain the sharing order ``T``.  We implement the classic Chu-Liu/Edmonds
contraction algorithm, which is ``O(V·E)`` — more than fast enough for the
graph sizes produced by ``DMST-Reduce`` (one vertex per *distinct*
in-neighbour set).

The entry point :func:`minimum_spanning_arborescence` returns, for every
vertex reachable from the root, the index of the chosen incoming edge in the
caller's edge list, so callers keep full control over edge payloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..exceptions import GraphError

__all__ = ["Arborescence", "minimum_spanning_arborescence"]


@dataclass(frozen=True)
class Arborescence:
    """Result of :func:`minimum_spanning_arborescence`.

    Attributes
    ----------
    root:
        The root vertex the arborescence is grown from.
    parent_edge:
        ``parent_edge[v]`` is the index (into the *input* edge list) of the
        edge entering ``v`` in the arborescence, or ``None`` for the root and
        for vertices unreachable from the root.
    total_weight:
        Sum of the chosen edge weights.
    """

    root: int
    parent_edge: tuple[Optional[int], ...]
    total_weight: float

    def chosen_edges(self) -> list[int]:
        """Return the chosen edge indices (one per covered non-root vertex)."""
        return [index for index in self.parent_edge if index is not None]

    def parent_of(self, vertex: int) -> Optional[int]:
        """Return the edge index entering ``vertex``, or ``None``."""
        return self.parent_edge[vertex]


@dataclass
class _Edge:
    source: int
    target: int
    weight: float
    original: int


def minimum_spanning_arborescence(
    num_vertices: int,
    edges: Sequence[tuple[int, int, float]],
    root: int,
    require_spanning: bool = True,
) -> Arborescence:
    """Compute a minimum-weight arborescence rooted at ``root``.

    Parameters
    ----------
    num_vertices:
        Number of vertices, ids ``0 .. num_vertices-1``.
    edges:
        Sequence of ``(source, target, weight)`` triples.  Parallel edges are
        allowed (the cheapest useful one wins); edges entering the root and
        self-loops are ignored.
    root:
        Root vertex.
    require_spanning:
        When ``True`` (default) a :class:`~repro.exceptions.GraphError` is
        raised if some vertex is unreachable from the root.  When ``False``,
        unreachable vertices simply have ``parent_edge[v] is None``.

    Returns
    -------
    Arborescence
        The chosen incoming edge per vertex and the total weight.
    """
    if not 0 <= root < num_vertices:
        raise GraphError(f"root {root} out of range for {num_vertices} vertices")

    work_edges = [
        _Edge(int(source), int(target), float(weight), index)
        for index, (source, target, weight) in enumerate(edges)
        if int(target) != root and int(source) != int(target)
    ]
    for edge in work_edges:
        if not (0 <= edge.source < num_vertices and 0 <= edge.target < num_vertices):
            raise GraphError(
                f"edge ({edge.source}, {edge.target}) out of range for "
                f"{num_vertices} vertices"
            )

    reachable = _reachable_from(num_vertices, work_edges, root)
    unreachable = [v for v in range(num_vertices) if v not in reachable]
    if unreachable and require_spanning:
        raise GraphError(
            f"{len(unreachable)} vertices are unreachable from root {root}; "
            "cannot build a spanning arborescence"
        )
    work_edges = [
        edge
        for edge in work_edges
        if edge.source in reachable and edge.target in reachable
    ]

    chosen_original = _edmonds(num_vertices, work_edges, root)

    parent_edge: list[Optional[int]] = [None] * num_vertices
    total_weight = 0.0
    for original_index in chosen_original:
        source, target, weight = edges[original_index]
        parent_edge[int(target)] = original_index
        total_weight += float(weight)
    return Arborescence(
        root=root, parent_edge=tuple(parent_edge), total_weight=total_weight
    )


def _reachable_from(num_vertices: int, edges: list[_Edge], root: int) -> set[int]:
    """Return the set of vertices reachable from ``root`` along ``edges``."""
    adjacency: list[list[int]] = [[] for _ in range(num_vertices)]
    for edge in edges:
        adjacency[edge.source].append(edge.target)
    seen = {root}
    stack = [root]
    while stack:
        vertex = stack.pop()
        for neighbor in adjacency[vertex]:
            if neighbor not in seen:
                seen.add(neighbor)
                stack.append(neighbor)
    return seen


def _edmonds(num_vertices: int, edges: list[_Edge], root: int) -> list[int]:
    """Recursive Chu-Liu/Edmonds contraction.

    Returns the list of *original* edge indices forming the arborescence over
    the vertices that currently have incoming edges (unreachable vertices
    have been filtered out by the caller).
    """
    # 1. Cheapest incoming edge per vertex.
    best_in: dict[int, _Edge] = {}
    for edge in edges:
        current = best_in.get(edge.target)
        if current is None or edge.weight < current.weight:
            best_in[edge.target] = edge
    if not best_in:
        return []

    # 2. Detect a cycle among the chosen edges.
    cycle = _find_cycle(best_in, root)
    if cycle is None:
        return [edge.original for edge in best_in.values()]

    cycle_set = set(cycle)
    cycle_id = num_vertices  # the contracted super-vertex gets a fresh id

    # 3. Contract the cycle and reweight edges entering it.
    contracted: list[_Edge] = []
    # Maps the contracted edge object back to (original incoming edge, the
    # cycle edge it would displace).
    entering_info: dict[int, tuple[_Edge, _Edge]] = {}
    for index, edge in enumerate(edges):
        source_in = edge.source in cycle_set
        target_in = edge.target in cycle_set
        if source_in and target_in:
            continue
        if target_in:
            displaced = best_in[edge.target]
            new_edge = _Edge(
                edge.source, cycle_id, edge.weight - displaced.weight, index
            )
            contracted.append(new_edge)
            entering_info[index] = (edge, displaced)
        elif source_in:
            contracted.append(_Edge(cycle_id, edge.target, edge.weight, index))
        else:
            contracted.append(_Edge(edge.source, edge.target, edge.weight, index))

    sub_result = _edmonds(num_vertices + 1, contracted, root)

    # 4. Expand the contraction.
    chosen: list[int] = []
    entering_edge: Optional[_Edge] = None
    displaced_edge: Optional[_Edge] = None
    for contracted_index in sub_result:
        info = entering_info.get(contracted_index)
        if info is not None and edges[contracted_index].target in cycle_set:
            entering_edge, displaced_edge = info
            chosen.append(entering_edge.original)
        else:
            chosen.append(edges[contracted_index].original)

    # Keep every cycle edge except the one displaced by the entering edge.
    for vertex in cycle:
        cycle_edge = best_in[vertex]
        if displaced_edge is not None and cycle_edge is displaced_edge:
            continue
        chosen.append(cycle_edge.original)
    return chosen


def _find_cycle(best_in: dict[int, _Edge], root: int) -> Optional[list[int]]:
    """Return one cycle (as a vertex list) in the chosen-edge graph, if any."""
    state: dict[int, int] = {}  # 0 = visiting, 1 = done
    for start in best_in:
        if state.get(start) == 1:
            continue
        path: list[int] = []
        vertex = start
        while True:
            if vertex == root or vertex not in best_in:
                break
            mark = state.get(vertex)
            if mark == 1:
                break
            if mark == 0:
                # Found a vertex already on the current path: extract cycle.
                cycle_start = path.index(vertex)
                for node in path[:cycle_start]:
                    state[node] = 1
                return path[cycle_start:]
            state[vertex] = 0
            path.append(vertex)
            vertex = best_in[vertex].source
        for node in path:
            state[node] = 1
    return None
