"""Undirected minimum spanning tree / forest (Prim's and Kruskal's algorithms).

The paper's hierarchical-clustering view of partial-sums sharing (Fig. 3b)
is an undirected dendrogram; these routines provide the undirected MST
machinery used by the ablation experiments that compare the directed
``DMST-Reduce`` ordering against a symmetric clustering of in-neighbour
sets.  They are deliberately dependency-free (plain heaps and the
:class:`~repro.mst.union_find.UnionFind` structure).
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence

from .union_find import UnionFind

__all__ = ["prim_mst", "kruskal_mst", "spanning_forest_weight"]


def prim_mst(
    num_vertices: int,
    edges: Sequence[tuple[int, int, float]],
    start: int = 0,
) -> list[int]:
    """Return the edge indices of an MST of the component containing ``start``.

    Edges are treated as undirected.  Vertices outside ``start``'s component
    are simply not covered (use :func:`kruskal_mst` for a spanning forest).
    """
    if num_vertices == 0:
        return []
    adjacency: list[list[tuple[float, int, int]]] = [[] for _ in range(num_vertices)]
    for index, (u, v, weight) in enumerate(edges):
        adjacency[int(u)].append((float(weight), int(v), index))
        adjacency[int(v)].append((float(weight), int(u), index))

    chosen: list[int] = []
    visited = [False] * num_vertices
    visited[start] = True
    heap: list[tuple[float, int, int]] = list(adjacency[start])
    heapq.heapify(heap)
    while heap:
        weight, vertex, index = heapq.heappop(heap)
        if visited[vertex]:
            continue
        visited[vertex] = True
        chosen.append(index)
        for candidate in adjacency[vertex]:
            if not visited[candidate[1]]:
                heapq.heappush(heap, candidate)
    return chosen


def kruskal_mst(
    num_vertices: int, edges: Sequence[tuple[int, int, float]]
) -> list[int]:
    """Return the edge indices of a minimum spanning *forest* (Kruskal)."""
    order = sorted(range(len(edges)), key=lambda index: float(edges[index][2]))
    dsu = UnionFind(num_vertices)
    chosen: list[int] = []
    for index in order:
        u, v, _ = edges[index]
        if dsu.union(int(u), int(v)):
            chosen.append(index)
    return chosen


def spanning_forest_weight(
    num_vertices: int, edges: Sequence[tuple[int, int, float]]
) -> float:
    """Return the total weight of a minimum spanning forest."""
    return sum(float(edges[index][2]) for index in kruskal_mst(num_vertices, edges))
