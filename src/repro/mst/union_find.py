"""Disjoint-set (union-find) data structure.

Used by the MST routines (Kruskal-style cycle detection, Edmonds' cycle
contraction bookkeeping) and handy on its own for grouping vertices with
identical in-neighbour sets.
"""

from __future__ import annotations

from collections.abc import Iterable

__all__ = ["UnionFind"]


class UnionFind:
    """Union-find over the integers ``0 .. n-1``.

    Implements union by rank and path compression, giving effectively
    constant amortised time per operation.

    Examples
    --------
    >>> dsu = UnionFind(4)
    >>> dsu.union(0, 1)
    True
    >>> dsu.connected(0, 1)
    True
    >>> dsu.connected(0, 2)
    False
    """

    __slots__ = ("_parent", "_rank", "_num_sets")

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError("size must be non-negative")
        self._parent = list(range(size))
        self._rank = [0] * size
        self._num_sets = size

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def num_sets(self) -> int:
        """Number of disjoint sets currently tracked."""
        return self._num_sets

    def find(self, item: int) -> int:
        """Return the canonical representative of ``item``'s set."""
        parent = self._parent
        root = item
        while parent[root] != root:
            root = parent[root]
        # Path compression: point every visited node directly at the root.
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(self, first: int, second: int) -> bool:
        """Merge the sets of ``first`` and ``second``.

        Returns ``True`` when a merge happened, ``False`` when the two items
        were already in the same set.
        """
        root_first = self.find(first)
        root_second = self.find(second)
        if root_first == root_second:
            return False
        if self._rank[root_first] < self._rank[root_second]:
            root_first, root_second = root_second, root_first
        self._parent[root_second] = root_first
        if self._rank[root_first] == self._rank[root_second]:
            self._rank[root_first] += 1
        self._num_sets -= 1
        return True

    def connected(self, first: int, second: int) -> bool:
        """Return whether the two items are in the same set."""
        return self.find(first) == self.find(second)

    def groups(self) -> list[list[int]]:
        """Return the current partition as a list of sorted member lists."""
        members: dict[int, list[int]] = {}
        for item in range(len(self._parent)):
            members.setdefault(self.find(item), []).append(item)
        return [sorted(group) for group in members.values()]

    @classmethod
    def from_pairs(cls, size: int, pairs: Iterable[tuple[int, int]]) -> "UnionFind":
        """Build a union-find with every pair in ``pairs`` already merged."""
        dsu = cls(size)
        for first, second in pairs:
            dsu.union(first, second)
        return dsu
