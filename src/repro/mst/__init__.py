"""Spanning-tree substrates: union-find, undirected MST, directed MST."""

from .edmonds import Arborescence, minimum_spanning_arborescence
from .prim import kruskal_mst, prim_mst, spanning_forest_weight
from .union_find import UnionFind

__all__ = [
    "Arborescence",
    "minimum_spanning_arborescence",
    "kruskal_mst",
    "prim_mst",
    "spanning_forest_weight",
    "UnionFind",
]
