"""Convenience constructors for :class:`~repro.graph.digraph.DiGraph`.

These helpers cover the common ways a SimRank workload arrives in practice:
an explicit edge list, a dense/sparse adjacency matrix, a ``networkx``
digraph, or a mapping from each vertex to its in-neighbour set (the form the
paper's worked examples are given in).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping, Sequence
from typing import Optional

import numpy as np
from scipy import sparse

from ..exceptions import GraphBuildError
from .digraph import DiGraph, GraphBuilder

__all__ = [
    "from_edges",
    "from_edge_list",
    "from_adjacency",
    "from_in_neighbor_sets",
    "from_networkx",
    "to_networkx",
    "empty_graph",
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
]


def from_edges(
    edges: Iterable[tuple[Hashable, Hashable]],
    n: Optional[int] = None,
    name: str = "",
) -> DiGraph:
    """Build a graph from ``(source, target)`` pairs of arbitrary labels.

    Parameters
    ----------
    edges:
        Directed edges.  Labels may be ints, strings or any hashable object;
        dense ids are assigned in first-seen order.
    n:
        Optional total vertex count.  Only valid when all labels are already
        integers in ``0 .. n-1``; it allows isolated vertices beyond the ones
        mentioned by the edge list.
    name:
        Optional graph name.
    """
    edges = list(edges)
    if n is not None:
        int_edges: list[tuple[int, int]] = []
        for source, target in edges:
            if not isinstance(source, (int, np.integer)) or not isinstance(
                target, (int, np.integer)
            ):
                raise GraphBuildError(
                    "explicit n requires integer vertex ids in 0..n-1"
                )
            int_edges.append((int(source), int(target)))
        return DiGraph(n, int_edges, name=name)
    builder = GraphBuilder(name=name)
    builder.add_edges(edges)
    return builder.build()


def from_edge_list(
    edges: Sequence[tuple[int, int]], n: Optional[int] = None, name: str = ""
) -> DiGraph:
    """Build a graph from integer edges, inferring ``n`` when not given."""
    edges = [(int(source), int(target)) for source, target in edges]
    if n is None:
        n = 1 + max((max(source, target) for source, target in edges), default=-1)
    return DiGraph(n, edges, name=name)


def from_adjacency(matrix: object, name: str = "") -> DiGraph:
    """Build a graph from a dense or sparse adjacency matrix.

    ``matrix[i, j] != 0`` is interpreted as the directed edge ``i -> j``.
    """
    if sparse.issparse(matrix):
        coo = matrix.tocoo()  # type: ignore[union-attr]
        if coo.shape[0] != coo.shape[1]:
            raise GraphBuildError(
                f"adjacency matrix must be square, got {coo.shape}"
            )
        edges = [
            (int(i), int(j))
            for i, j, value in zip(coo.row, coo.col, coo.data)
            if value != 0
        ]
        return DiGraph(coo.shape[0], edges, name=name)
    dense = np.asarray(matrix)
    if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
        raise GraphBuildError(f"adjacency matrix must be square, got {dense.shape}")
    rows, cols = np.nonzero(dense)
    edges = [(int(i), int(j)) for i, j in zip(rows, cols)]
    return DiGraph(dense.shape[0], edges, name=name)


def from_in_neighbor_sets(
    in_sets: Mapping[Hashable, Iterable[Hashable]], name: str = ""
) -> DiGraph:
    """Build a graph from a ``vertex -> in-neighbour set`` mapping.

    This mirrors how the paper presents its worked example (Fig. 2a): each
    row lists ``I(v)``.  Vertices appearing only inside in-neighbour sets are
    created automatically with an empty in-neighbour set of their own.
    """
    builder = GraphBuilder(name=name)
    for vertex in in_sets:
        builder.add_vertex(vertex)
    for vertex, neighbors in in_sets.items():
        for neighbor in neighbors:
            builder.add_edge(neighbor, vertex)
    return builder.build()


def from_networkx(nx_graph: object, name: str = "") -> DiGraph:
    """Convert a ``networkx`` (Di)Graph into a :class:`DiGraph`.

    Undirected ``networkx`` graphs are converted by emitting both edge
    directions, matching the convention used for co-authorship networks.
    """
    directed = bool(getattr(nx_graph, "is_directed")())
    builder = GraphBuilder(name=name or str(getattr(nx_graph, "name", "")))
    for node in nx_graph.nodes():  # type: ignore[attr-defined]
        builder.add_vertex(node)
    for source, target in nx_graph.edges():  # type: ignore[attr-defined]
        builder.add_edge(source, target)
        if not directed:
            builder.add_edge(target, source)
    return builder.build()


def to_networkx(graph: DiGraph):
    """Convert a :class:`DiGraph` to a ``networkx.DiGraph`` (labels preserved)."""
    import networkx as nx

    nx_graph = nx.DiGraph(name=graph.name)
    for vertex in graph.vertices():
        nx_graph.add_node(graph.label_of(vertex))
    for source, target in graph.edges():
        nx_graph.add_edge(graph.label_of(source), graph.label_of(target))
    return nx_graph


# --------------------------------------------------------------------------- #
# Tiny canonical graphs, mostly useful for tests and documentation examples.
# --------------------------------------------------------------------------- #
def empty_graph(n: int, name: str = "empty") -> DiGraph:
    """Return ``n`` isolated vertices and no edges."""
    return DiGraph(n, (), name=name)


def path_graph(n: int, name: str = "path") -> DiGraph:
    """Return the directed path ``0 -> 1 -> ... -> n-1``."""
    return DiGraph(n, ((i, i + 1) for i in range(n - 1)), name=name)


def cycle_graph(n: int, name: str = "cycle") -> DiGraph:
    """Return the directed cycle on ``n`` vertices."""
    if n <= 0:
        return DiGraph(0, (), name=name)
    return DiGraph(n, ((i, (i + 1) % n) for i in range(n)), name=name)


def complete_graph(n: int, name: str = "complete") -> DiGraph:
    """Return the complete digraph on ``n`` vertices (no self-loops)."""
    edges = ((i, j) for i in range(n) for j in range(n) if i != j)
    return DiGraph(n, edges, name=name)


def star_graph(n_leaves: int, name: str = "star") -> DiGraph:
    """Return a star with every leaf pointing at the hub (vertex 0).

    All leaves share the empty in-neighbour set and the hub's in-neighbour
    set is all leaves, which makes this the best case for partial-sums
    sharing experiments.
    """
    return DiGraph(
        n_leaves + 1, ((leaf, 0) for leaf in range(1, n_leaves + 1)), name=name
    )
