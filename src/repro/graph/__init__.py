"""Graph substrate: containers, builders, matrices, IO, statistics, generators."""

from .builders import (
    complete_graph,
    cycle_graph,
    empty_graph,
    from_adjacency,
    from_edge_list,
    from_edges,
    from_in_neighbor_sets,
    from_networkx,
    path_graph,
    star_graph,
    to_networkx,
)
from .digraph import DiGraph, GraphBuilder
from .edgelist import EdgeListGraph
from .io import (
    read_edge_list,
    read_labeled_json,
    write_edge_list,
    write_labeled_json,
)
from .matrices import (
    adjacency_from_edges,
    adjacency_matrix,
    backward_transition_from_edges,
    backward_transition_matrix,
    edge_arrays,
    forward_transition_from_edges,
    forward_transition_matrix,
    in_degree_vector,
    out_degree_vector,
)
from .properties import (
    DegreeStatistics,
    OverlapStatistics,
    dataset_summary_row,
    degree_statistics,
    overlap_statistics,
)

__all__ = [
    "DiGraph",
    "EdgeListGraph",
    "GraphBuilder",
    "from_edges",
    "from_edge_list",
    "from_adjacency",
    "from_in_neighbor_sets",
    "from_networkx",
    "to_networkx",
    "empty_graph",
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
    "read_edge_list",
    "write_edge_list",
    "read_labeled_json",
    "write_labeled_json",
    "adjacency_from_edges",
    "adjacency_matrix",
    "backward_transition_from_edges",
    "backward_transition_matrix",
    "edge_arrays",
    "forward_transition_from_edges",
    "forward_transition_matrix",
    "in_degree_vector",
    "out_degree_vector",
    "DegreeStatistics",
    "OverlapStatistics",
    "degree_statistics",
    "overlap_statistics",
    "dataset_summary_row",
]
