"""Structural statistics of a graph that matter to SimRank performance.

The paper's complexity claim is that OIP-SR runs in ``O(K d' n²)`` where
``d'`` is driven by how much the in-neighbour sets of different vertices
overlap.  :func:`overlap_statistics` quantifies exactly that: the average
symmetric-difference size along the DMST (the paper's ``d_⊖``), the fraction
of partial sums that can be derived from a cached neighbour rather than from
scratch (the "share ratio" annotated in Fig. 6c), and the plain degree
statistics reported in Fig. 5.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from .digraph import DiGraph

__all__ = [
    "DegreeStatistics",
    "OverlapStatistics",
    "degree_statistics",
    "overlap_statistics",
    "dataset_summary_row",
]


@dataclass(frozen=True)
class DegreeStatistics:
    """Degree summary mirroring the columns of the paper's Fig. 5."""

    num_vertices: int
    num_edges: int
    average_in_degree: float
    max_in_degree: int
    max_out_degree: int
    num_sources: int
    """Vertices with no in-neighbours (their SimRank rows are trivial)."""
    num_sinks: int
    """Vertices with no out-neighbours."""

    def as_dict(self) -> dict[str, float]:
        """Return the statistics as a plain dictionary (for result tables)."""
        return {
            "vertices": self.num_vertices,
            "edges": self.num_edges,
            "avg_degree": round(self.average_in_degree, 2),
            "max_in_degree": self.max_in_degree,
            "max_out_degree": self.max_out_degree,
            "sources": self.num_sources,
            "sinks": self.num_sinks,
        }


@dataclass(frozen=True)
class OverlapStatistics:
    """How much in-neighbour sets overlap — the driver of OIP-SR's speed-up.

    Attributes
    ----------
    num_nonempty_sets:
        Number of vertices with a non-empty in-neighbour set (the vertex set
        of the transition-cost graph ``G*``, minus the root).
    num_distinct_sets:
        Number of *distinct* in-neighbour sets; duplicated sets are free wins
        for sharing.
    average_in_degree:
        The paper's ``d`` restricted to non-empty sets.
    average_symmetric_difference:
        The paper's ``d_⊖``: the mean, over the edges of a greedy sharing
        chain, of ``|I(a) ⊖ I(b)|`` — an upper proxy for ``d'``.
    share_ratio:
        Fraction of non-empty in-neighbour sets whose cheapest incoming
        transition cost is strictly smaller than building from scratch
        (``|I(b)| − 1``); this is the "share radio/ratio" annotated on
        Fig. 6c.
    union_size:
        ``|∪_v I(v)|`` — the paper notes sharing is guaranteed to occur on
        every DMST path whenever this is smaller than ``Σ_v |I(v)|``.
    total_in_degree:
        ``Σ_v |I(v)|``.
    """

    num_nonempty_sets: int
    num_distinct_sets: int
    average_in_degree: float
    average_symmetric_difference: float
    share_ratio: float
    union_size: int
    total_in_degree: int

    @property
    def guaranteed_sharing(self) -> bool:
        """True when the paper's sufficient condition for sharing holds."""
        return self.union_size < self.total_in_degree

    def as_dict(self) -> dict[str, float]:
        """Return the statistics as a plain dictionary (for result tables)."""
        return {
            "nonempty_sets": self.num_nonempty_sets,
            "distinct_sets": self.num_distinct_sets,
            "avg_in_degree": round(self.average_in_degree, 3),
            "avg_sym_diff": round(self.average_symmetric_difference, 3),
            "share_ratio": round(self.share_ratio, 3),
            "union_size": self.union_size,
            "total_in_degree": self.total_in_degree,
        }


def degree_statistics(graph: DiGraph) -> DegreeStatistics:
    """Compute :class:`DegreeStatistics` for ``graph``."""
    in_degrees = [graph.in_degree(vertex) for vertex in graph.vertices()]
    out_degrees = [graph.out_degree(vertex) for vertex in graph.vertices()]
    return DegreeStatistics(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        average_in_degree=graph.average_in_degree(),
        max_in_degree=max(in_degrees, default=0),
        max_out_degree=max(out_degrees, default=0),
        num_sources=sum(1 for degree in in_degrees if degree == 0),
        num_sinks=sum(1 for degree in out_degrees if degree == 0),
    )


def overlap_statistics(
    graph: DiGraph, max_candidates_per_vertex: int = 32
) -> OverlapStatistics:
    """Estimate in-neighbour-set overlap without building the full DMST.

    For every vertex ``b`` with a non-empty in-neighbour set the routine
    looks at a bounded number of *candidate* vertices ``a`` that share at
    least one in-neighbour with ``b`` (harvested through the out-adjacency
    lists) and records the cheapest transition cost
    ``min(|I(a) ⊖ I(b)|, |I(b)| − 1)``.  This is exactly the edge-weight rule
    the DMST uses (Eq. 7), so the resulting averages are a faithful, cheap
    proxy for the quantities that appear in the paper's complexity analysis.

    Parameters
    ----------
    graph:
        Input graph.
    max_candidates_per_vertex:
        Cap on how many sharing candidates are examined per vertex; keeps the
        estimate ``O(n · cap · d)`` on dense graphs.
    """
    in_sets = [set(graph.in_neighbors(vertex)) for vertex in graph.vertices()]
    nonempty = [vertex for vertex in graph.vertices() if in_sets[vertex]]
    total_in_degree = sum(len(in_sets[vertex]) for vertex in nonempty)
    union: set[int] = set()
    for vertex in nonempty:
        union |= in_sets[vertex]

    distinct = {tuple(sorted(in_sets[vertex])) for vertex in nonempty}

    cheapest_costs: list[int] = []
    shared = 0
    for vertex in nonempty:
        from_scratch = len(in_sets[vertex]) - 1
        best = from_scratch
        candidates: Counter[int] = Counter()
        for in_neighbor in in_sets[vertex]:
            for sibling in graph.out_neighbors(in_neighbor):
                if sibling != vertex and in_sets[sibling]:
                    candidates[sibling] += 1
        for sibling, _ in candidates.most_common(max_candidates_per_vertex):
            sym_diff = len(in_sets[vertex] ^ in_sets[sibling])
            if sym_diff < best:
                best = sym_diff
        cheapest_costs.append(max(best, 0))
        if best < from_scratch:
            shared += 1

    num_nonempty = len(nonempty)
    return OverlapStatistics(
        num_nonempty_sets=num_nonempty,
        num_distinct_sets=len(distinct),
        average_in_degree=(total_in_degree / num_nonempty) if num_nonempty else 0.0,
        average_symmetric_difference=(
            float(np.mean(cheapest_costs)) if cheapest_costs else 0.0
        ),
        share_ratio=(shared / num_nonempty) if num_nonempty else 0.0,
        union_size=len(union),
        total_in_degree=total_in_degree,
    )


def dataset_summary_row(graph: DiGraph, name: str = "") -> dict[str, object]:
    """Return one row of a Fig. 5-style dataset table for ``graph``."""
    stats = degree_statistics(graph)
    return {
        "dataset": name or graph.name or "unnamed",
        "vertices": stats.num_vertices,
        "edges": stats.num_edges,
        "avg_degree": round(stats.average_in_degree, 1),
    }
