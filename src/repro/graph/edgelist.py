"""A minimal edge-list graph for matrix-only pipelines.

:class:`~repro.graph.digraph.DiGraph` builds sorted, de-duplicated Python
adjacency tuples in its constructor — an ``O(m log m)`` pass through Python
objects that every per-vertex algorithm needs but the sparse-matrix backend
does not.  :class:`EdgeListGraph` is the cheap alternative for workloads that
only ever touch the graph through :mod:`repro.graph.matrices`: it stores the
raw ``(sources, targets)`` arrays as NumPy ``int64`` vectors and hands them
straight to the vectorised CSR builders, so graph construction is ``O(m)``
array work with no Python-level per-edge loop.

It quacks like a :class:`DiGraph` where the matrix pipeline needs it to
(``num_vertices``, ``num_edges``, ``edge_arrays``, ``index_of``,
``label_of``) and can be upgraded to a full :class:`DiGraph` via
:meth:`to_digraph` when a per-vertex algorithm is requested after all.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Optional

import numpy as np

from ..exceptions import GraphBuildError, VertexNotFoundError
from .matrices import validate_edge_arrays

__all__ = ["EdgeListGraph", "edge_list_from_pairs"]


def edge_list_from_pairs(
    num_vertices: int,
    pairs: Iterable[tuple[int, int]],
    name: str = "",
) -> "EdgeListGraph":
    """Build an :class:`EdgeListGraph` from a collection of edge pairs.

    The one shared implementation behind every *edge-overlay* rebuild (the
    serving engine's and the session engine's mutable edge sets both
    funnel through it): pairs are sorted for determinism — the same edge
    set always yields the same arrays, whatever order mutations happened
    in — and the empty set builds a valid edgeless graph.
    """
    pairs = sorted(pairs)
    if pairs:
        edge_array = np.array(pairs, dtype=np.int64)
        sources, targets = edge_array[:, 0], edge_array[:, 1]
    else:
        sources = np.empty(0, dtype=np.int64)
        targets = np.empty(0, dtype=np.int64)
    return EdgeListGraph.from_arrays(num_vertices, sources, targets, name=name)


class EdgeListGraph:
    """An immutable edge list with integer vertices ``0 .. n-1``.

    Parameters
    ----------
    n:
        Number of vertices.
    edges:
        Either an iterable of ``(source, target)`` pairs or an ``(m, 2)``
        array.  Duplicates are kept verbatim here (the CSR builders collapse
        them), so construction never sorts or de-duplicates.
    name:
        Optional human-readable name used in reprs and benchmark tables.
    """

    __slots__ = ("_n", "_sources", "_targets", "name")

    def __init__(
        self,
        n: int,
        edges: Iterable[tuple[int, int]] | np.ndarray = (),
        name: str = "",
    ) -> None:
        if n < 0:
            raise GraphBuildError(f"vertex count must be non-negative, got {n}")
        self._n = int(n)
        self.name = name

        edge_array = np.asarray(
            edges if isinstance(edges, np.ndarray) else list(edges), dtype=np.int64
        )
        if edge_array.size == 0:
            sources = np.empty(0, dtype=np.int64)
            targets = np.empty(0, dtype=np.int64)
        elif edge_array.ndim == 2 and edge_array.shape[1] == 2:
            sources = np.ascontiguousarray(edge_array[:, 0])
            targets = np.ascontiguousarray(edge_array[:, 1])
        else:
            raise GraphBuildError(
                f"edges must be (source, target) pairs, got shape {edge_array.shape}"
            )
        self._sources, self._targets = validate_edge_arrays(
            self._n, sources, targets
        )

    @classmethod
    def from_arrays(
        cls, n: int, sources, targets, name: str = ""
    ) -> "EdgeListGraph":
        """Build from parallel ``sources`` / ``targets`` arrays without copying pairs."""
        graph = cls(n, name=name)
        graph._sources, graph._targets = validate_edge_arrays(n, sources, targets)
        return graph

    # ------------------------------------------------------------------ #
    # Size accessors (DiGraph-compatible)
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of stored edge samples (duplicates are *not* collapsed)."""
        return int(self._sources.size)

    def __len__(self) -> int:
        return self._n

    def vertices(self) -> range:
        """Return the vertex ids as a ``range`` object."""
        return range(self._n)

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return the raw ``(sources, targets)`` arrays (no copies)."""
        return self._sources, self._targets

    def edges(self):
        """Yield every stored ``(source, target)`` pair."""
        for source, target in zip(self._sources, self._targets):
            yield (int(source), int(target))

    # ------------------------------------------------------------------ #
    # Label interface (ids are their own labels)
    # ------------------------------------------------------------------ #
    def index_of(self, label) -> int:
        """Return the vertex id for ``label`` (ids are their own labels)."""
        if isinstance(label, (int, np.integer)) and 0 <= int(label) < self._n:
            return int(label)
        raise VertexNotFoundError(label)

    def label_of(self, vertex: int) -> int:
        """Return the label of ``vertex`` (the id itself)."""
        if not (0 <= vertex < self._n):
            raise VertexNotFoundError(vertex)
        return vertex

    # ------------------------------------------------------------------ #
    # Upgrades
    # ------------------------------------------------------------------ #
    def to_digraph(self, name: Optional[str] = None):
        """Materialise a full :class:`~repro.graph.digraph.DiGraph`.

        Use this when an algorithm needs per-vertex adjacency (OIP-SR,
        psum-SR, ...); the matrix backends never do.
        """
        from .digraph import DiGraph

        return DiGraph(
            self._n,
            zip(self._sources.tolist(), self._targets.tolist()),
            name=self.name if name is None else name,
        )

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<EdgeListGraph{label} n={self._n} m={self.num_edges}>"
