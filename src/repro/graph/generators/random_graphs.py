"""Uniform random digraph generators (the GTGraph "random" model).

The paper's synthetic experiments (SYN, Fig. 6c) use GTGraph, which offers a
uniform random model parameterised by the number of vertices and edges.
:func:`uniform_random` reproduces that interface; :func:`gnp_random` is the
directed Erdős–Rényi variant, handy for property-based tests.
"""

from __future__ import annotations

import numpy as np

from ...exceptions import ConfigurationError
from ..digraph import DiGraph

__all__ = ["uniform_random", "gnp_random"]


def uniform_random(
    num_vertices: int,
    num_edges: int,
    seed: int = 0,
    allow_self_loops: bool = False,
    name: str = "",
) -> DiGraph:
    """Sample a digraph with ``num_vertices`` vertices and ``num_edges`` edges.

    Edges are drawn uniformly at random without replacement (duplicates are
    re-sampled), matching GTGraph's ``-t 1`` random generator closely enough
    for the density sweep of Fig. 6c.

    Parameters
    ----------
    num_vertices, num_edges:
        Graph size.  ``num_edges`` must not exceed the number of possible
        distinct edges.
    seed:
        Seed for the underlying ``numpy`` generator (deterministic output).
    allow_self_loops:
        Whether ``v -> v`` edges may be produced.
    """
    if num_vertices < 0:
        raise ConfigurationError("num_vertices must be non-negative")
    max_edges = num_vertices * (num_vertices if allow_self_loops else num_vertices - 1)
    if num_edges < 0 or num_edges > max_edges:
        raise ConfigurationError(
            f"num_edges must be in [0, {max_edges}] for n={num_vertices}"
        )
    rng = np.random.default_rng(seed)
    edges: set[tuple[int, int]] = set()
    # Vectorised rejection sampling: draw batches until enough distinct edges.
    while len(edges) < num_edges:
        remaining = num_edges - len(edges)
        batch = max(remaining * 2, 1024)
        sources = rng.integers(0, num_vertices, size=batch)
        targets = rng.integers(0, num_vertices, size=batch)
        for source, target in zip(sources, targets):
            if not allow_self_loops and source == target:
                continue
            edges.add((int(source), int(target)))
            if len(edges) == num_edges:
                break
    return DiGraph(
        num_vertices, edges, name=name or f"uniform-random-{num_vertices}-{num_edges}"
    )


def gnp_random(
    num_vertices: int,
    edge_probability: float,
    seed: int = 0,
    allow_self_loops: bool = False,
    name: str = "",
) -> DiGraph:
    """Sample a directed Erdős–Rényi ``G(n, p)`` graph.

    Every ordered pair ``(u, v)`` (with ``u != v`` unless
    ``allow_self_loops``) becomes an edge independently with probability
    ``edge_probability``.
    """
    if not 0.0 <= edge_probability <= 1.0:
        raise ConfigurationError("edge_probability must lie in [0, 1]")
    if num_vertices < 0:
        raise ConfigurationError("num_vertices must be non-negative")
    rng = np.random.default_rng(seed)
    mask = rng.random((num_vertices, num_vertices)) < edge_probability
    if not allow_self_loops:
        np.fill_diagonal(mask, False)
    rows, cols = np.nonzero(mask)
    edges = [(int(source), int(target)) for source, target in zip(rows, cols)]
    return DiGraph(
        num_vertices,
        edges,
        name=name or f"gnp-{num_vertices}-{edge_probability:g}",
    )
