"""Scale-free digraph generators based on preferential attachment.

Web graphs and citation networks both have heavy-tailed in-degree
distributions: a few hub pages/patents receive most of the links.  SimRank's
partial-sums redundancy grows with such skew (many vertices citing the same
hubs share most of their in-neighbour sets), so a preferential-attachment
generator is the right "shape" substitute for the paper's crawled datasets.
"""

from __future__ import annotations

import numpy as np

from ...exceptions import ConfigurationError
from ..digraph import DiGraph

__all__ = ["preferential_attachment", "power_law_out_degrees"]


def power_law_out_degrees(
    num_vertices: int,
    average_degree: float,
    exponent: float = 2.2,
    max_degree: int | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Sample per-vertex out-degrees from a truncated discrete power law.

    The degrees are rescaled so their mean is close to ``average_degree``.
    Used by the web-graph and citation generators to decide how many links
    each new vertex emits.
    """
    if num_vertices <= 0:
        return np.zeros(0, dtype=np.int64)
    if average_degree < 0:
        raise ConfigurationError("average_degree must be non-negative")
    if exponent <= 1.0:
        raise ConfigurationError("exponent must be > 1 for a normalisable tail")
    rng = np.random.default_rng(seed)
    if max_degree is None:
        max_degree = max(int(average_degree * 20), 4)
    support = np.arange(1, max_degree + 1, dtype=np.float64)
    weights = support ** (-exponent)
    weights /= weights.sum()
    degrees = rng.choice(np.arange(1, max_degree + 1), size=num_vertices, p=weights)
    current_mean = degrees.mean()
    if current_mean > 0 and average_degree > 0:
        scaled = np.maximum(
            1, np.round(degrees * (average_degree / current_mean))
        ).astype(np.int64)
    else:
        scaled = degrees.astype(np.int64)
    return np.minimum(scaled, max(num_vertices - 1, 1))


def preferential_attachment(
    num_vertices: int,
    out_degree: int = 3,
    seed: int = 0,
    name: str = "",
) -> DiGraph:
    """Grow a digraph where new vertices link to popular existing vertices.

    Vertex ``t`` (for ``t >= 1``) emits ``min(out_degree, t)`` edges whose
    targets are chosen with probability proportional to ``1 +`` current
    in-degree, i.e. the classic Barabási–Albert rule adapted to directed
    edges.  The resulting in-degree distribution is heavy-tailed, and many
    late vertices share hub in-neighbours.
    """
    if num_vertices < 0:
        raise ConfigurationError("num_vertices must be non-negative")
    if out_degree < 0:
        raise ConfigurationError("out_degree must be non-negative")
    rng = np.random.default_rng(seed)
    edges: list[tuple[int, int]] = []
    in_degree = np.zeros(num_vertices, dtype=np.float64)
    for vertex in range(1, num_vertices):
        num_links = min(out_degree, vertex)
        if num_links == 0:
            continue
        weights = 1.0 + in_degree[:vertex]
        weights /= weights.sum()
        targets = rng.choice(vertex, size=num_links, replace=False, p=weights)
        for target in targets:
            edges.append((vertex, int(target)))
            in_degree[int(target)] += 1.0
    return DiGraph(
        num_vertices, edges, name=name or f"preferential-{num_vertices}-{out_degree}"
    )
