"""Citation-network generator: the PATENT dataset analogue.

The paper's largest dataset is the NBER U.S. patent citation network
(3.77M patents, 16.5M citations, average degree 4.4).  We cannot ship or
download it, so :func:`citation_network` grows a time-ordered citation DAG
with the structural properties that matter for SimRank performance:

* edges only point backwards in time (a patent cites older patents);
* the number of citations per patent is small and right-skewed
  (average ≈ 4.4 for the default parameters);
* citations are organised around *technology classes*: each class maintains a
  canonical list of foundational patents that most later patents of the class
  cite together.  Co-citation bundles of this kind are what make the
  in-neighbour sets of the foundational patents overlap (the same cohort of
  citing patents appears in all of them) — the redundancy OIP-SR shares.
  The remaining citations mix recency preference with global preferential
  attachment, as in the real network.

The overlap on PATENT is weaker than on a web crawl (average degree 4.4 vs
11.1), which is why the paper reports a 2.7× speed-up there against 4.6× on
BERKSTAN; the generator defaults reproduce that ordering.

:func:`patent_like` wraps the generator with the scaled default used by the
workload registry.
"""

from __future__ import annotations

import numpy as np

from ...exceptions import ConfigurationError
from ..digraph import DiGraph

__all__ = ["citation_network", "patent_like"]


def citation_network(
    num_papers: int,
    average_citations: float = 4.4,
    num_classes: int = 25,
    canonical_size: int = 3,
    canonical_share: float = 0.45,
    family_size_range: tuple[int, int] = (1, 4),
    family_cocitation: float = 0.8,
    recency_bias: float = 0.05,
    seed: int = 0,
    name: str = "",
) -> DiGraph:
    """Grow a time-ordered citation DAG organised in technology classes.

    Paper ``t`` belongs to a technology class and a *patent family* (a group
    of related filings).  Its reference list mixes three mechanisms:

    * **canonical co-citation** — a fraction ``canonical_share`` of the
      citations goes to the class's canonical list (its ``canonical_size``
      earliest papers), so class cohorts cite the same foundations together;
    * **family bundling** — whenever a cited paper belongs to a multi-paper
      family, its family members are co-cited with probability
      ``family_cocitation``.  Real patent families are cited as bundles,
      which makes the family members' in-neighbour sets nearly identical —
      the overlap partial-sums sharing exploits;
    * **background citations** — the remainder is drawn from all earlier
      papers with a recency kernel ``exp(-recency_bias · age)`` mixed with
      preferential attachment.

    Parameters
    ----------
    num_papers:
        Number of vertices.
    average_citations:
        Approximate mean out-degree (reference-list length).
    num_classes:
        Number of technology classes.
    canonical_size:
        Number of foundational papers per class.
    canonical_share:
        Fraction of each reference list drawn from the canonical list.
    family_size_range:
        Inclusive range of patent-family sizes (families are assigned to
        consecutive papers of the same class).
    family_cocitation:
        Probability that citing one family member also cites the others.
    recency_bias:
        Decay rate of the recency kernel for background citations.
    seed:
        Deterministic seed.
    """
    if num_papers < 0:
        raise ConfigurationError("num_papers must be non-negative")
    if average_citations < 0:
        raise ConfigurationError("average_citations must be non-negative")
    if num_classes <= 0:
        raise ConfigurationError("num_classes must be positive")
    if canonical_size < 0:
        raise ConfigurationError("canonical_size must be non-negative")
    if not 0.0 <= canonical_share <= 1.0:
        raise ConfigurationError("canonical_share must lie in [0, 1]")
    if not 0.0 <= family_cocitation <= 1.0:
        raise ConfigurationError("family_cocitation must lie in [0, 1]")
    low_family, high_family = family_size_range
    if low_family < 1 or high_family < low_family:
        raise ConfigurationError("family_size_range must satisfy 1 <= low <= high")
    rng = np.random.default_rng(seed)

    class_of = rng.integers(0, num_classes, size=num_papers)

    # Assign papers to families: consecutive papers of the same class form a
    # family whose size is drawn uniformly from the configured range.
    family_of = np.zeros(num_papers, dtype=np.int64)
    family_members: list[list[int]] = []
    pending: dict[int, tuple[int, int]] = {}  # class -> (family id, remaining slots)
    for paper in range(num_papers):
        technology_class = int(class_of[paper])
        family_id, remaining = pending.get(technology_class, (-1, 0))
        if remaining <= 0:
            family_id = len(family_members)
            family_members.append([])
            remaining = int(rng.integers(low_family, high_family + 1))
        family_of[paper] = family_id
        family_members[family_id].append(paper)
        pending[technology_class] = (family_id, remaining - 1)

    canonical_by_class: list[list[int]] = [[] for _ in range(num_classes)]
    in_degree = np.zeros(num_papers, dtype=np.float64)
    edges: list[tuple[int, int]] = []
    # Family bundling adds extra citations on top of the base draw, so shrink
    # the base rate to keep the realised average close to the target.
    base_rate = max(average_citations * 0.7, 0.0)

    for paper in range(num_papers):
        technology_class = int(class_of[paper])
        canonical = canonical_by_class[technology_class]

        num_citations = min(int(rng.poisson(base_rate)), paper)
        cited: set[int] = set()
        if num_citations > 0:
            # Canonical co-citations within the technology class.
            num_canonical = min(
                int(round(canonical_share * num_citations)), len(canonical)
            )
            if num_canonical > 0:
                chosen = rng.choice(len(canonical), size=num_canonical, replace=False)
                cited.update(canonical[position] for position in chosen)

            # Background citations: recency + preferential attachment.
            remaining = num_citations - len(cited)
            if remaining > 0:
                ages = paper - np.arange(paper)
                recency = np.exp(-recency_bias * ages)
                popularity = 1.0 + in_degree[:paper]
                weights = (
                    0.5 * recency / recency.sum()
                    + 0.5 * popularity / popularity.sum()
                )
                weights /= weights.sum()
                extra = rng.choice(
                    paper, size=min(remaining, paper), replace=False, p=weights
                )
                cited.update(int(target) for target in extra)

            # Family bundling: citing one member usually cites the others.
            for target in list(cited):
                for sibling in family_members[int(family_of[target])]:
                    if sibling < paper and rng.random() < family_cocitation:
                        cited.add(sibling)

        for target in cited:
            if target != paper:
                edges.append((paper, int(target)))
                in_degree[int(target)] += 1.0

        # Early papers of a class become its canonical references.
        if len(canonical) < canonical_size:
            canonical.append(paper)

    return DiGraph(num_papers, edges, name=name or f"citation-{num_papers}")


def patent_like(
    num_papers: int = 1600, seed: int = 7, name: str = "PATENT-like"
) -> DiGraph:
    """Return the scaled PATENT analogue used by the workload registry.

    The real PATENT network has average degree 4.4; the generator reproduces
    that average, the DAG orientation, the class-level co-citation structure
    and the family-bundle overlap at a laptop-scale vertex count.
    """
    return citation_network(
        num_papers=num_papers,
        average_citations=4.4,
        num_classes=max(num_papers // 60, 2),
        canonical_size=3,
        canonical_share=0.45,
        family_size_range=(1, 4),
        family_cocitation=0.8,
        recency_bias=0.05,
        seed=seed,
        name=name,
    )
