"""R-MAT recursive-matrix graph generator (the GTGraph R-MAT model).

GTGraph's second generator is R-MAT (Chakrabarti, Zhan, Faloutsos, SDM 2004):
each edge lands in one quadrant of the adjacency matrix with probabilities
``(a, b, c, d)`` and recursion continues inside the chosen quadrant.  The
result has a skewed, community-like degree distribution similar to web and
citation graphs, which is exactly the structure that gives OIP-SR overlapping
in-neighbour sets to share.
"""

from __future__ import annotations

import numpy as np

from ...exceptions import ConfigurationError
from ..digraph import DiGraph
from ..edgelist import EdgeListGraph

__all__ = ["rmat", "rmat_edge_list"]


def _validate_parameters(scale: int, num_edges: int, probabilities: np.ndarray) -> None:
    if scale < 0:
        raise ConfigurationError("scale must be non-negative")
    if np.any(probabilities < 0) or abs(probabilities.sum() - 1.0) > 1e-9:
        raise ConfigurationError("(a, b, c, d) must be non-negative and sum to 1")
    if num_edges < 0:
        raise ConfigurationError("num_edges must be non-negative")


def _sample_edge_batch(
    rng: np.random.Generator,
    batch: int,
    scale: int,
    probabilities: np.ndarray,
    noise: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample one batch of R-MAT edges; each edge needs `scale` quadrant draws."""
    rows = np.zeros(batch, dtype=np.int64)
    cols = np.zeros(batch, dtype=np.int64)
    for level in range(scale):
        jitter = 1.0 + noise * (rng.random((batch, 4)) - 0.5)
        level_probabilities = probabilities[None, :] * jitter
        level_probabilities /= level_probabilities.sum(axis=1, keepdims=True)
        cumulative = np.cumsum(level_probabilities, axis=1)
        draws = rng.random(batch)[:, None]
        quadrant = (draws >= cumulative).sum(axis=1)
        half = 1 << (scale - level - 1)
        rows += np.where(quadrant >= 2, half, 0)
        cols += np.where(quadrant % 2 == 1, half, 0)
    return rows, cols


def rmat(
    scale: int,
    num_edges: int,
    a: float = 0.45,
    b: float = 0.15,
    c: float = 0.15,
    d: float = 0.25,
    seed: int = 0,
    noise: float = 0.05,
    allow_self_loops: bool = False,
    name: str = "",
) -> DiGraph:
    """Generate an R-MAT graph with ``2**scale`` vertices.

    Parameters
    ----------
    scale:
        Log2 of the number of vertices.
    num_edges:
        Number of edge samples.  Duplicate samples are collapsed, so the
        resulting graph may have slightly fewer distinct edges — the same
        behaviour as GTGraph.
    a, b, c, d:
        Quadrant probabilities; must be non-negative and sum to 1 (within a
        small tolerance).  The defaults are GTGraph's defaults.
    seed:
        Deterministic seed.
    noise:
        Per-level multiplicative jitter applied to the quadrant
        probabilities, which avoids the perfectly self-similar structure of
        noiseless R-MAT.
    allow_self_loops:
        Whether self-loops are kept.
    """
    probabilities = np.array([a, b, c, d], dtype=np.float64)
    _validate_parameters(scale, num_edges, probabilities)

    num_vertices = 1 << scale
    rng = np.random.default_rng(seed)
    edges: set[tuple[int, int]] = set()

    # Sample edges in batches; each edge needs `scale` quadrant decisions.
    attempts = 0
    max_attempts = 20
    while len(edges) < num_edges and attempts < max_attempts:
        attempts += 1
        batch = max(num_edges - len(edges), 1)
        rows, cols = _sample_edge_batch(rng, batch, scale, probabilities, noise)
        for source, target in zip(rows, cols):
            source = int(source)
            target = int(target)
            if not allow_self_loops and source == target:
                continue
            edges.add((source, target))
            if len(edges) == num_edges:
                break

    return DiGraph(
        num_vertices,
        edges,
        name=name or f"rmat-s{scale}-m{num_edges}",
    )


def rmat_edge_list(
    scale: int,
    num_edges: int,
    a: float = 0.45,
    b: float = 0.15,
    c: float = 0.15,
    d: float = 0.25,
    seed: int = 0,
    noise: float = 0.05,
    allow_self_loops: bool = False,
    name: str = "",
) -> EdgeListGraph:
    """Generate an R-MAT :class:`~repro.graph.edgelist.EdgeListGraph`.

    This is the vectorised fast path for matrix-only pipelines: edges are
    sampled in one NumPy batch and de-duplicated with ``np.unique`` — no
    Python per-edge loop and no sorted adjacency lists, so it scales to
    millions of edges.  Unlike :func:`rmat` it does not resample to top up
    collisions, so the graph may have slightly fewer than ``num_edges``
    distinct edges (the same caveat GTGraph documents).
    """
    probabilities = np.array([a, b, c, d], dtype=np.float64)
    _validate_parameters(scale, num_edges, probabilities)

    num_vertices = 1 << scale
    rng = np.random.default_rng(seed)
    rows, cols = _sample_edge_batch(rng, max(num_edges, 1), scale, probabilities, noise)
    if num_edges == 0:
        rows = rows[:0]
        cols = cols[:0]
    if not allow_self_loops:
        keep = rows != cols
        rows = rows[keep]
        cols = cols[keep]
    encoded = rows * num_vertices + cols
    encoded = np.unique(encoded)
    rows, cols = np.divmod(encoded, num_vertices)
    return EdgeListGraph.from_arrays(
        num_vertices,
        rows,
        cols,
        name=name or f"rmat-s{scale}-m{num_edges}",
    )
