"""Synthetic graph generators standing in for the paper's datasets.

* :mod:`~repro.graph.generators.random_graphs` — uniform random / G(n, p)
  (GTGraph "random" model, used for the SYN density sweep).
* :mod:`~repro.graph.generators.rmat` — R-MAT (GTGraph's second model).
* :mod:`~repro.graph.generators.powerlaw` — preferential attachment.
* :mod:`~repro.graph.generators.citation` — time-ordered citation DAG
  (PATENT analogue).
* :mod:`~repro.graph.generators.webgraph` — host-clustered hyperlink graph
  (BERKSTAN analogue).
* :mod:`~repro.graph.generators.coauthorship` — yearly publication simulator
  with named authors (DBLP analogue).
"""

from .citation import citation_network, patent_like
from .coauthorship import (
    CoauthorshipSimulator,
    author_name,
    dblp_like_snapshots,
)
from .powerlaw import power_law_out_degrees, preferential_attachment
from .random_graphs import gnp_random, uniform_random
from .rmat import rmat, rmat_edge_list
from .webgraph import berkstan_like, web_graph

__all__ = [
    "citation_network",
    "patent_like",
    "CoauthorshipSimulator",
    "author_name",
    "dblp_like_snapshots",
    "power_law_out_degrees",
    "preferential_attachment",
    "gnp_random",
    "uniform_random",
    "rmat",
    "rmat_edge_list",
    "berkstan_like",
    "web_graph",
]
