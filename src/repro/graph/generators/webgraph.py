"""Clustered web-graph generator: the BERKSTAN dataset analogue.

web-BerkStan is a crawl of the ``berkeley.edu`` and ``stanford.edu`` domains:
685K pages, 7.6M hyperlinks, average degree 11.1.  Two structural properties
matter for this paper:

* a high average in-degree, and
* strong *host locality*: a host's index/navigation pages link to most pages
  of the host (directory listings), and every page links back to the
  navigation pages.  Consequently ordinary pages of one host share virtually
  the same in-neighbour set (the host's index pages), and the index pages
  themselves share the host's page set as in-neighbours.

That in-neighbour-set overlap is exactly what partial-sums sharing exploits —
the paper measures its largest speed-up (4.6×) on BERKSTAN — so the generator
models hosts explicitly: index pages ⇄ content pages inside each host, plus
configurable random intra-/cross-host links that keep the sets from being
perfectly identical.

:func:`berkstan_like` provides the scaled default used by the workload
registry.
"""

from __future__ import annotations

import numpy as np

from ...exceptions import ConfigurationError
from ..digraph import DiGraph

__all__ = ["web_graph", "berkstan_like"]


def web_graph(
    num_pages: int,
    num_hosts: int,
    average_degree: float = 11.0,
    index_pages_per_host: int = 3,
    directory_probability: float = 0.9,
    navigation_probability: float = 0.9,
    noise_fraction: float = 0.15,
    cross_host_probability: float = 0.2,
    seed: int = 0,
    name: str = "",
) -> DiGraph:
    """Generate a host-clustered hyperlink graph with directory structure.

    Pages are partitioned into ``num_hosts`` hosts; the first
    ``index_pages_per_host`` pages of each host act as its index/navigation
    pages.  Links come from three mechanisms:

    * **directory links** — each index page links to each content page of its
      host with probability ``directory_probability`` (so content pages share
      the index pages as in-neighbours);
    * **navigation links** — each content page links to each index page of
      its host with probability ``navigation_probability`` (so index pages
      share the host's content pages as in-neighbours);
    * **noise links** — a ``noise_fraction`` of the remaining degree budget is
      spent on random links, staying inside the host with probability
      ``1 − cross_host_probability``; these keep in-neighbour sets from being
      exactly identical, as in a real crawl.

    Parameters
    ----------
    num_pages, num_hosts:
        Graph size and number of host clusters.
    average_degree:
        Approximate target for the mean out-degree.
    index_pages_per_host:
        Number of navigation/index pages per host.
    directory_probability, navigation_probability:
        Probabilities of the structural links described above.
    noise_fraction:
        Fraction of pages receiving extra random in-links.
    cross_host_probability:
        Probability that a noise link crosses host boundaries.
    seed:
        Deterministic seed.
    """
    if num_pages < 0:
        raise ConfigurationError("num_pages must be non-negative")
    if num_hosts <= 0:
        raise ConfigurationError("num_hosts must be positive")
    for probability, label in (
        (directory_probability, "directory_probability"),
        (navigation_probability, "navigation_probability"),
        (cross_host_probability, "cross_host_probability"),
    ):
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError(f"{label} must lie in [0, 1]")
    if not 0.0 <= noise_fraction <= 1.0:
        raise ConfigurationError("noise_fraction must lie in [0, 1]")
    rng = np.random.default_rng(seed)

    host_of = rng.integers(0, num_hosts, size=num_pages)
    pages_by_host: list[np.ndarray] = [
        np.flatnonzero(host_of == host) for host in range(num_hosts)
    ]
    index_by_host: list[np.ndarray] = [
        pages[: min(index_pages_per_host, len(pages))] for pages in pages_by_host
    ]

    edges: set[tuple[int, int]] = set()
    for host in range(num_hosts):
        host_pages = pages_by_host[host]
        index_pages = set(int(page) for page in index_by_host[host])
        content_pages = [int(page) for page in host_pages if int(page) not in index_pages]

        # Directory links: index page -> content pages of the host.
        for index_page in index_pages:
            for content_page in content_pages:
                if rng.random() < directory_probability:
                    edges.add((index_page, content_page))

        # Navigation links: content page -> index pages of the host.
        for content_page in content_pages:
            for index_page in index_pages:
                if rng.random() < navigation_probability:
                    edges.add((content_page, index_page))

    # Noise links: a subset of pages emits a few extra random links, which
    # lands extra in-neighbours on random targets.
    num_noisy = int(round(noise_fraction * num_pages))
    noisy_pages = rng.choice(num_pages, size=num_noisy, replace=False) if num_noisy else []
    extra_budget = max(average_degree - 2 * index_pages_per_host, 1.0)
    for page in noisy_pages:
        page = int(page)
        host = int(host_of[page])
        host_pages = pages_by_host[host]
        num_links = int(rng.poisson(extra_budget))
        for _ in range(num_links):
            if rng.random() < cross_host_probability or len(host_pages) < 2:
                target = int(rng.integers(0, num_pages))
            else:
                target = int(host_pages[rng.integers(0, len(host_pages))])
            if target != page:
                edges.add((page, target))

    return DiGraph(
        num_pages, edges, name=name or f"webgraph-{num_pages}-{num_hosts}hosts"
    )


def berkstan_like(
    num_pages: int = 1200, seed: int = 11, name: str = "BERKSTAN-like"
) -> DiGraph:
    """Return the scaled BERKSTAN analogue used by the workload registry.

    The defaults target an average degree around the real dataset's 11.1 and
    keep the strong host locality (shared directory and navigation links)
    that drives the in-neighbour-set overlap OIP-SR exploits.
    """
    num_hosts = max(num_pages // 55, 2)
    return web_graph(
        num_pages=num_pages,
        num_hosts=num_hosts,
        average_degree=11.1,
        index_pages_per_host=4,
        directory_probability=0.85,
        navigation_probability=0.9,
        noise_fraction=0.2,
        cross_host_probability=0.25,
        seed=seed,
        name=name,
    )
