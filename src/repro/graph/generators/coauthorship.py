"""Co-authorship network generator: the DBLP dataset analogue.

The paper builds four co-authorship graphs (D02, D05, D08, D11) from DBLP by
taking the 2000–2011 publications of eight database/data-mining venues and
snapshotting every three years.  The graphs are undirected co-author
relations stored as symmetric directed edges, have small average degree
(≈2.4–2.8) and a strong community structure (research groups publish
together repeatedly).

:class:`CoauthorshipSimulator` reproduces that generative process at laptop
scale: authors belong to research groups, papers are written each year by
mostly-intra-group author subsets, new authors join over time, and snapshots
are cumulative.  Author vertices carry synthetic names so the top-k query
experiments (Fig. 6g/6h) have a human-readable workload.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...exceptions import ConfigurationError
from ..digraph import DiGraph, GraphBuilder

__all__ = ["CoauthorshipSimulator", "dblp_like_snapshots", "author_name"]

_FIRST_NAMES = (
    "Wei", "Xin", "Jian", "Lei", "Ming", "Yu", "Hao", "Lin", "Feng", "Jun",
    "Anna", "Boris", "Carla", "David", "Elena", "Frank", "Grace", "Henry",
    "Irene", "Jack", "Kara", "Liam", "Maria", "Nina", "Oscar", "Paula",
    "Quinn", "Rosa", "Sam", "Tina", "Uma", "Victor", "Wendy", "Xavier",
    "Yan", "Zoe", "Amir", "Bianca", "Chen", "Dmitri",
)

_LAST_NAMES = (
    "Zhang", "Wang", "Li", "Chen", "Liu", "Yang", "Huang", "Zhao", "Wu",
    "Zhou", "Smith", "Johnson", "Mueller", "Garcia", "Kim", "Park", "Singh",
    "Kumar", "Tanaka", "Sato", "Rossi", "Silva", "Novak", "Ivanov", "Petrov",
    "Nguyen", "Tran", "Lee", "Martin", "Bernard", "Dubois", "Moreau",
    "Fischer", "Weber", "Schmidt", "Keller", "Andersson", "Larsen", "Haas",
    "Costa",
)


def author_name(index: int) -> str:
    """Return a deterministic synthetic author name for vertex ``index``.

    Names cycle through a first/last-name product and append a numeric
    suffix when the product is exhausted, so names stay unique for any
    realistic author count.
    """
    first = _FIRST_NAMES[index % len(_FIRST_NAMES)]
    last = _LAST_NAMES[(index // len(_FIRST_NAMES)) % len(_LAST_NAMES)]
    generation = index // (len(_FIRST_NAMES) * len(_LAST_NAMES))
    suffix = f" {generation + 1}" if generation else ""
    return f"{first} {last}{suffix}"


@dataclass(frozen=True)
class CoauthorshipSnapshot:
    """One cumulative snapshot of the simulated co-authorship network."""

    label: str
    year: int
    graph: DiGraph


class CoauthorshipSimulator:
    """Simulate yearly publications of a research community.

    Parameters
    ----------
    num_groups:
        Number of research groups; each group has a core of senior authors.
    authors_per_group:
        Initial number of authors per group.
    papers_per_group_per_year:
        Expected number of papers each group publishes each year.
    new_authors_per_group_per_year:
        Expected number of new authors (students) joining each group yearly.
    cross_group_probability:
        Probability that a paper includes one author from another group
        (collaborations are what connect the communities).
    seed:
        Deterministic seed.
    """

    def __init__(
        self,
        num_groups: int = 40,
        authors_per_group: int = 6,
        papers_per_group_per_year: float = 3.0,
        new_authors_per_group_per_year: float = 1.5,
        cross_group_probability: float = 0.25,
        seed: int = 0,
    ) -> None:
        if num_groups <= 0:
            raise ConfigurationError("num_groups must be positive")
        if authors_per_group <= 0:
            raise ConfigurationError("authors_per_group must be positive")
        self.num_groups = num_groups
        self.authors_per_group = authors_per_group
        self.papers_per_group_per_year = papers_per_group_per_year
        self.new_authors_per_group_per_year = new_authors_per_group_per_year
        self.cross_group_probability = cross_group_probability
        self.seed = seed

    def run(
        self,
        start_year: int = 2000,
        snapshot_years: tuple[int, ...] = (2002, 2005, 2008, 2011),
    ) -> list[CoauthorshipSnapshot]:
        """Simulate publications and return cumulative snapshots.

        Each snapshot contains every co-authorship edge created up to and
        including its year, mirroring the paper's cumulative D02–D11 series.
        """
        rng = np.random.default_rng(self.seed)
        end_year = max(snapshot_years)

        group_members: list[list[int]] = []
        next_author = 0
        for _ in range(self.num_groups):
            members = list(range(next_author, next_author + self.authors_per_group))
            next_author += self.authors_per_group
            group_members.append(members)

        coauthor_pairs: set[tuple[int, int]] = set()
        snapshots: list[CoauthorshipSnapshot] = []
        snapshot_set = set(snapshot_years)

        for year in range(start_year, end_year + 1):
            for group, members in enumerate(group_members):
                # New authors join the group (students, postdocs).
                num_new = int(rng.poisson(self.new_authors_per_group_per_year))
                for _ in range(num_new):
                    members.append(next_author)
                    next_author += 1

                num_papers = int(rng.poisson(self.papers_per_group_per_year))
                for _ in range(num_papers):
                    # A typical paper: one or two senior (core) authors plus
                    # one or two junior co-authors.  Juniors often appear on a
                    # single paper, which keeps the average degree low and
                    # makes many of them share an identical co-author set —
                    # both properties of the real DBLP snapshots.
                    core = members[: self.authors_per_group]
                    juniors = members[self.authors_per_group :]
                    num_core = min(2 if rng.random() < 0.2 else 1, len(core))
                    num_juniors = min(2 if rng.random() < 0.3 else 1, len(juniors))
                    if num_core + num_juniors < 2:
                        continue
                    ranks = np.arange(1, len(core) + 1, dtype=np.float64)
                    core_weights = 1.0 / ranks
                    core_weights /= core_weights.sum()
                    team = list(
                        rng.choice(core, size=num_core, replace=False, p=core_weights)
                    )
                    if num_juniors and juniors:
                        team.extend(
                            rng.choice(juniors, size=num_juniors, replace=False)
                        )
                    if (
                        rng.random() < self.cross_group_probability
                        and self.num_groups > 1
                    ):
                        other_group = int(rng.integers(0, self.num_groups))
                        if other_group != group and group_members[other_group]:
                            guest = int(rng.choice(group_members[other_group]))
                            team.append(guest)
                    for i, author_a in enumerate(team):
                        for author_b in team[i + 1 :]:
                            a, b = int(author_a), int(author_b)
                            if a == b:
                                continue
                            coauthor_pairs.add((min(a, b), max(a, b)))

            if year in snapshot_set:
                snapshots.append(
                    CoauthorshipSnapshot(
                        label=f"D{year % 100:02d}",
                        year=year,
                        graph=self._build_graph(coauthor_pairs, year),
                    )
                )
        return snapshots

    def _build_graph(
        self, coauthor_pairs: set[tuple[int, int]], year: int
    ) -> DiGraph:
        """Materialise the symmetric co-authorship graph for a snapshot."""
        builder = GraphBuilder(name=f"DBLP-like-D{year % 100:02d}")
        for author_a, author_b in sorted(coauthor_pairs):
            name_a = author_name(author_a)
            name_b = author_name(author_b)
            builder.add_edge(name_a, name_b)
            builder.add_edge(name_b, name_a)
        return builder.build()


def dblp_like_snapshots(
    scale: float = 1.0, seed: int = 3
) -> list[CoauthorshipSnapshot]:
    """Return the four DBLP-analogue snapshots (D02, D05, D08, D11).

    ``scale`` multiplies the number of research groups; ``scale=1.0`` yields
    graphs of roughly 400–1,300 authors with average degree ≈ 2.5–3,
    mirroring the relative growth of the paper's D02–D11 series at about
    1/15th of the size.
    """
    num_groups = max(int(round(40 * scale)), 2)
    simulator = CoauthorshipSimulator(
        num_groups=num_groups,
        authors_per_group=6,
        papers_per_group_per_year=3.0,
        new_authors_per_group_per_year=1.5,
        cross_group_probability=0.25,
        seed=seed,
    )
    return simulator.run()
