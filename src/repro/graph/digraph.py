"""A lightweight directed-graph container tailored to SimRank computation.

SimRank only ever needs two things from the graph: the *in-neighbour set*
``I(v)`` of every vertex (the recursion in Eq. 1 of the paper averages over
in-neighbours) and, for a handful of auxiliary steps, the out-neighbour set
``O(v)``.  :class:`DiGraph` therefore stores both adjacency directions as
tuples of sorted vertex ids and exposes them through cheap accessors.

Vertices are dense integer ids ``0 .. n-1``.  Human-readable labels (paper
titles, author names, URLs) are optional and stored side by side; they never
participate in the numeric algorithms.

The class is immutable after construction: every SimRank algorithm in this
package assumes the graph does not change while it runs, and immutability
makes graphs safe to share between benchmark repetitions and test fixtures.
Use :class:`GraphBuilder` (or the helpers in :mod:`repro.graph.builders`) to
assemble a graph incrementally.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Sequence
from typing import Optional

import numpy as np

from ..exceptions import GraphBuildError, VertexNotFoundError

__all__ = ["DiGraph", "GraphBuilder"]


class DiGraph:
    """An immutable directed graph with integer vertices ``0 .. n-1``.

    Parameters
    ----------
    n:
        Number of vertices.
    edges:
        Iterable of ``(source, target)`` pairs with ``0 <= source, target < n``.
        Parallel edges are collapsed; self-loops are kept (SimRank permits
        them, they simply make a vertex one of its own in-neighbours).
    labels:
        Optional sequence of ``n`` hashable labels.  When provided, labels
        must be unique; :meth:`index_of` and :meth:`label_of` translate
        between labels and ids.
    name:
        Optional human-readable name used in reprs and benchmark tables.

    Notes
    -----
    The constructor is O(m log m) because adjacency lists are sorted and
    de-duplicated; all subsequent neighbourhood queries are O(1) lookups of
    pre-built tuples.
    """

    __slots__ = (
        "_n",
        "_m",
        "_in_adj",
        "_out_adj",
        "_labels",
        "_label_to_index",
        "name",
    )

    def __init__(
        self,
        n: int,
        edges: Iterable[tuple[int, int]] = (),
        labels: Optional[Sequence[Hashable]] = None,
        name: str = "",
    ) -> None:
        if n < 0:
            raise GraphBuildError(f"vertex count must be non-negative, got {n}")
        self._n = int(n)
        self.name = name

        in_sets: list[set[int]] = [set() for _ in range(self._n)]
        out_sets: list[set[int]] = [set() for _ in range(self._n)]
        for source, target in edges:
            source = int(source)
            target = int(target)
            if not (0 <= source < self._n):
                raise GraphBuildError(
                    f"edge source {source} out of range for n={self._n}"
                )
            if not (0 <= target < self._n):
                raise GraphBuildError(
                    f"edge target {target} out of range for n={self._n}"
                )
            out_sets[source].add(target)
            in_sets[target].add(source)

        self._in_adj: tuple[tuple[int, ...], ...] = tuple(
            tuple(sorted(neighbors)) for neighbors in in_sets
        )
        self._out_adj: tuple[tuple[int, ...], ...] = tuple(
            tuple(sorted(neighbors)) for neighbors in out_sets
        )
        self._m = sum(len(neighbors) for neighbors in self._out_adj)

        self._labels: Optional[tuple[Hashable, ...]] = None
        self._label_to_index: Optional[dict[Hashable, int]] = None
        if labels is not None:
            labels = tuple(labels)
            if len(labels) != self._n:
                raise GraphBuildError(
                    f"expected {self._n} labels, got {len(labels)}"
                )
            label_to_index = {label: index for index, label in enumerate(labels)}
            if len(label_to_index) != self._n:
                raise GraphBuildError("vertex labels must be unique")
            self._labels = labels
            self._label_to_index = label_to_index

    # ------------------------------------------------------------------ #
    # Basic size accessors
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of distinct directed edges ``m``."""
        return self._m

    def __len__(self) -> int:
        return self._n

    def vertices(self) -> range:
        """Return the vertex ids as a ``range`` object."""
        return range(self._n)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Yield every directed edge as a ``(source, target)`` pair."""
        for source in range(self._n):
            for target in self._out_adj[source]:
                yield (source, target)

    # ------------------------------------------------------------------ #
    # Neighbourhood accessors
    # ------------------------------------------------------------------ #
    def in_neighbors(self, vertex: int) -> tuple[int, ...]:
        """Return ``I(vertex)``, the sorted tuple of in-neighbours."""
        self._check_vertex(vertex)
        return self._in_adj[vertex]

    def out_neighbors(self, vertex: int) -> tuple[int, ...]:
        """Return ``O(vertex)``, the sorted tuple of out-neighbours."""
        self._check_vertex(vertex)
        return self._out_adj[vertex]

    def in_degree(self, vertex: int) -> int:
        """Return ``|I(vertex)|``."""
        self._check_vertex(vertex)
        return len(self._in_adj[vertex])

    def out_degree(self, vertex: int) -> int:
        """Return ``|O(vertex)|``."""
        self._check_vertex(vertex)
        return len(self._out_adj[vertex])

    def in_neighbor_sets(self) -> tuple[tuple[int, ...], ...]:
        """Return the full tuple of in-neighbour tuples, indexed by vertex."""
        return self._in_adj

    def out_neighbor_sets(self) -> tuple[tuple[int, ...], ...]:
        """Return the full tuple of out-neighbour tuples, indexed by vertex."""
        return self._out_adj

    def has_edge(self, source: int, target: int) -> bool:
        """Return ``True`` when the directed edge ``source -> target`` exists."""
        self._check_vertex(source)
        self._check_vertex(target)
        neighbors = self._out_adj[source]
        # Binary search over the sorted tuple keeps this O(log d).
        low, high = 0, len(neighbors)
        while low < high:
            mid = (low + high) // 2
            if neighbors[mid] < target:
                low = mid + 1
            else:
                high = mid
        return low < len(neighbors) and neighbors[low] == target

    def average_in_degree(self) -> float:
        """Return the average in-degree ``d = m / n`` (0 for the empty graph)."""
        if self._n == 0:
            return 0.0
        return self._m / self._n

    # ------------------------------------------------------------------ #
    # Labels
    # ------------------------------------------------------------------ #
    @property
    def has_labels(self) -> bool:
        """Whether the graph carries vertex labels."""
        return self._labels is not None

    def label_of(self, vertex: int) -> Hashable:
        """Return the label of ``vertex`` (the id itself when unlabelled)."""
        self._check_vertex(vertex)
        if self._labels is None:
            return vertex
        return self._labels[vertex]

    def index_of(self, label: Hashable) -> int:
        """Return the vertex id carrying ``label``.

        Labels are looked up first; as a convenience, an integer that is not
        a label but is a valid vertex id is accepted as the id itself, so
        callers can address vertices either way.

        Raises
        ------
        VertexNotFoundError
            If the label is unknown (and not a valid vertex id).
        """
        if self._label_to_index is not None and label in self._label_to_index:
            return self._label_to_index[label]
        if isinstance(label, (int, np.integer)) and 0 <= int(label) < self._n:
            return int(label)
        raise VertexNotFoundError(label)

    def labels(self) -> tuple[Hashable, ...]:
        """Return all labels in id order (ids themselves when unlabelled)."""
        if self._labels is None:
            return tuple(range(self._n))
        return self._labels

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #
    def reverse(self) -> "DiGraph":
        """Return a new graph with every edge direction flipped."""
        return DiGraph(
            self._n,
            ((target, source) for source, target in self.edges()),
            labels=self._labels,
            name=f"{self.name}-reversed" if self.name else "",
        )

    def subgraph(self, vertices: Sequence[int]) -> "DiGraph":
        """Return the induced subgraph on ``vertices`` (re-indexed from 0).

        The i-th vertex of the result corresponds to ``vertices[i]``.
        """
        keep = list(dict.fromkeys(int(v) for v in vertices))
        for vertex in keep:
            self._check_vertex(vertex)
        old_to_new = {old: new for new, old in enumerate(keep)}
        edges = [
            (old_to_new[source], old_to_new[target])
            for source in keep
            for target in self._out_adj[source]
            if target in old_to_new
        ]
        labels = None
        if self._labels is not None:
            labels = [self._labels[old] for old in keep]
        return DiGraph(len(keep), edges, labels=labels, name=self.name)

    # ------------------------------------------------------------------ #
    # Dunder helpers
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return (
            self._n == other._n
            and self._out_adj == other._out_adj
            and self._labels == other._labels
        )

    def __hash__(self) -> int:
        return hash((self._n, self._out_adj))

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<DiGraph{label} n={self._n} m={self._m} "
            f"avg_in_degree={self.average_in_degree():.2f}>"
        )

    def _check_vertex(self, vertex: int) -> None:
        if not (0 <= vertex < self._n):
            raise VertexNotFoundError(vertex)


class GraphBuilder:
    """Incrementally assemble a :class:`DiGraph`.

    The builder accepts arbitrary hashable vertex labels, assigns dense ids
    in first-seen order and produces an immutable :class:`DiGraph` via
    :meth:`build`.

    Examples
    --------
    >>> builder = GraphBuilder()
    >>> builder.add_edge("paper-1", "paper-2")
    >>> builder.add_edge("paper-3", "paper-2")
    >>> graph = builder.build()
    >>> graph.in_degree(graph.index_of("paper-2"))
    2
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._label_to_index: dict[Hashable, int] = {}
        self._labels: list[Hashable] = []
        self._edges: list[tuple[int, int]] = []

    def add_vertex(self, label: Hashable) -> int:
        """Register ``label`` (if new) and return its dense id."""
        index = self._label_to_index.get(label)
        if index is None:
            index = len(self._labels)
            self._label_to_index[label] = index
            self._labels.append(label)
        return index

    def add_edge(self, source: Hashable, target: Hashable) -> None:
        """Add the directed edge ``source -> target`` (vertices auto-created)."""
        self._edges.append((self.add_vertex(source), self.add_vertex(target)))

    def add_edges(self, edges: Iterable[tuple[Hashable, Hashable]]) -> None:
        """Add every ``(source, target)`` pair in ``edges``."""
        for source, target in edges:
            self.add_edge(source, target)

    @property
    def num_vertices(self) -> int:
        """Number of vertices registered so far."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of edge insertions so far (before de-duplication)."""
        return len(self._edges)

    def build(self, keep_labels: bool = True) -> DiGraph:
        """Return the immutable :class:`DiGraph` assembled so far.

        Parameters
        ----------
        keep_labels:
            When ``False`` the result is unlabelled even if labels were used
            during construction (useful when labels were only convenient
            handles, e.g. integer ids from a file).
        """
        labels = self._labels if keep_labels else None
        use_labels: Optional[Sequence[Hashable]] = labels
        if labels is not None and all(
            isinstance(label, int) and label == index
            for index, label in enumerate(labels)
        ):
            # Labels that are exactly 0..n-1 add nothing over the ids.
            use_labels = None
        return DiGraph(
            len(self._labels), self._edges, labels=use_labels, name=self.name
        )
