"""Sparse-matrix views of a :class:`~repro.graph.digraph.DiGraph`.

The matrix form of SimRank (Eq. 3 of the paper) is written in terms of the
*backward transition matrix* ``Q`` with ``Q[i, j] = 1 / |I(i)|`` whenever the
edge ``j -> i`` exists.  These helpers build ``Q``, the plain adjacency
matrix and a couple of related normalisations as ``scipy.sparse`` CSR
matrices so the matrix-form solvers and the SVD baseline can share them.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from .digraph import DiGraph

__all__ = [
    "adjacency_matrix",
    "backward_transition_matrix",
    "forward_transition_matrix",
    "in_degree_vector",
    "out_degree_vector",
]


def adjacency_matrix(graph: DiGraph, dtype: type = np.float64) -> sparse.csr_matrix:
    """Return the adjacency matrix ``A`` with ``A[i, j] = 1`` iff ``i -> j``."""
    n = graph.num_vertices
    rows: list[int] = []
    cols: list[int] = []
    for source, target in graph.edges():
        rows.append(source)
        cols.append(target)
    data = np.ones(len(rows), dtype=dtype)
    return sparse.csr_matrix((data, (rows, cols)), shape=(n, n))


def in_degree_vector(graph: DiGraph) -> np.ndarray:
    """Return the length-``n`` vector of in-degrees ``|I(v)|``."""
    return np.array(
        [graph.in_degree(vertex) for vertex in graph.vertices()], dtype=np.int64
    )


def out_degree_vector(graph: DiGraph) -> np.ndarray:
    """Return the length-``n`` vector of out-degrees ``|O(v)|``."""
    return np.array(
        [graph.out_degree(vertex) for vertex in graph.vertices()], dtype=np.int64
    )


def backward_transition_matrix(
    graph: DiGraph, dtype: type = np.float64
) -> sparse.csr_matrix:
    """Return ``Q`` with ``Q[i, j] = 1 / |I(i)|`` for every edge ``j -> i``.

    Rows of vertices with no in-neighbours are all zero, matching the paper's
    convention that such vertices have similarity 0 with everything but
    themselves.  Every non-zero row sums to exactly 1.
    """
    n = graph.num_vertices
    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    for vertex in graph.vertices():
        in_neighbors = graph.in_neighbors(vertex)
        if not in_neighbors:
            continue
        weight = 1.0 / len(in_neighbors)
        for neighbor in in_neighbors:
            rows.append(vertex)
            cols.append(neighbor)
            data.append(weight)
    return sparse.csr_matrix(
        (np.asarray(data, dtype=dtype), (rows, cols)), shape=(n, n)
    )


def forward_transition_matrix(
    graph: DiGraph, dtype: type = np.float64
) -> sparse.csr_matrix:
    """Return ``P`` with ``P[i, j] = 1 / |O(i)|`` for every edge ``i -> j``.

    This is the out-link analogue of :func:`backward_transition_matrix`; it is
    used by the P-Rank extension, which mixes in- and out-link recursions.
    """
    n = graph.num_vertices
    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    for vertex in graph.vertices():
        out_neighbors = graph.out_neighbors(vertex)
        if not out_neighbors:
            continue
        weight = 1.0 / len(out_neighbors)
        for neighbor in out_neighbors:
            rows.append(vertex)
            cols.append(neighbor)
            data.append(weight)
    return sparse.csr_matrix(
        (np.asarray(data, dtype=dtype), (rows, cols)), shape=(n, n)
    )
