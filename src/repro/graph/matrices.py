"""Sparse-matrix views of a graph (:class:`DiGraph` or :class:`EdgeListGraph`).

The matrix form of SimRank (Eq. 3 of the paper) is written in terms of the
*backward transition matrix* ``Q`` with ``Q[i, j] = 1 / |I(i)|`` whenever the
edge ``j -> i`` exists.  These helpers build ``Q``, the plain adjacency
matrix and a couple of related normalisations as ``scipy.sparse`` CSR
matrices so the matrix-form solvers, the SVD baseline and the compute
backends in :mod:`repro.core.backends` can share them.

Two construction paths are provided:

* graph-based (``adjacency_matrix``, ``backward_transition_matrix``, ...)
  taking a :class:`DiGraph` (or any object exposing ``edge_arrays``), and
* edge-list-based (``adjacency_from_edges``, ``backward_transition_from_edges``,
  ...) building the CSR matrix directly from raw ``(sources, targets)``
  arrays with vectorised NumPy/SciPy operations — no sorted Python adjacency
  lists are ever materialised, which is the fast path the sparse backend uses
  for matrix-only pipelines.

Parallel edges are collapsed in every builder, matching the
:class:`~repro.graph.digraph.DiGraph` convention.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from ..exceptions import GraphBuildError
from .digraph import DiGraph

__all__ = [
    "adjacency_matrix",
    "adjacency_from_edges",
    "backward_transition_matrix",
    "backward_transition_from_edges",
    "edge_arrays",
    "forward_transition_matrix",
    "forward_transition_from_edges",
    "in_degree_vector",
    "out_degree_vector",
    "validate_edge_arrays",
]


def edge_arrays(graph) -> tuple[np.ndarray, np.ndarray]:
    """Return the graph's edges as parallel ``(sources, targets)`` arrays.

    :class:`~repro.graph.edgelist.EdgeListGraph` stores the arrays directly;
    for a :class:`DiGraph` they are assembled from the out-adjacency tuples
    in one vectorised pass.
    """
    own = getattr(graph, "edge_arrays", None)
    if callable(own):
        return own()
    out_adj = graph.out_neighbor_sets()
    n = graph.num_vertices
    counts = np.fromiter(
        (len(neighbors) for neighbors in out_adj), dtype=np.int64, count=n
    )
    total = int(counts.sum())
    targets = np.fromiter(
        (target for neighbors in out_adj for target in neighbors),
        dtype=np.int64,
        count=total,
    )
    sources = np.repeat(np.arange(n, dtype=np.int64), counts)
    return sources, targets


def validate_edge_arrays(
    n: int, sources, targets
) -> tuple[np.ndarray, np.ndarray]:
    """Coerce ``sources``/``targets`` to ``int64`` arrays and bounds-check them.

    The single validation point shared by the CSR builders and
    :class:`~repro.graph.edgelist.EdgeListGraph`.
    """
    sources = np.asarray(sources, dtype=np.int64).ravel()
    targets = np.asarray(targets, dtype=np.int64).ravel()
    if sources.shape != targets.shape:
        raise GraphBuildError(
            f"sources and targets differ in length: {sources.size} vs {targets.size}"
        )
    if sources.size:
        low = min(int(sources.min()), int(targets.min()))
        high = max(int(sources.max()), int(targets.max()))
        if low < 0 or high >= n:
            raise GraphBuildError(
                f"edge endpoint out of range for n={n}: saw ids in [{low}, {high}]"
            )
    return sources, targets


def adjacency_from_edges(
    n: int, sources, targets, dtype: type = np.float64
) -> sparse.csr_matrix:
    """Build ``A`` with ``A[i, j] = 1`` iff ``i -> j`` directly from edge arrays.

    Duplicate ``(source, target)`` pairs are collapsed to a single unit entry.
    """
    sources, targets = validate_edge_arrays(n, sources, targets)
    data = np.ones(sources.size, dtype=dtype)
    matrix = sparse.csr_matrix((data, (sources, targets)), shape=(n, n))
    # COO -> CSR summed duplicates; reset them to unit weight.
    matrix.data[:] = 1
    return matrix


def backward_transition_from_edges(
    n: int, sources, targets, dtype: type = np.float64
) -> sparse.csr_matrix:
    """Build ``Q`` with ``Q[i, j] = 1 / |I(i)|`` directly from edge arrays.

    Rows of vertices with no in-neighbours are all zero, matching the paper's
    convention that such vertices have similarity 0 with everything but
    themselves.  Every non-zero row sums to exactly 1.
    """
    adjacency = adjacency_from_edges(n, sources, targets, dtype=dtype)
    transition = adjacency.T.tocsr()
    return _normalize_rows(transition)


def forward_transition_from_edges(
    n: int, sources, targets, dtype: type = np.float64
) -> sparse.csr_matrix:
    """Build ``P`` with ``P[i, j] = 1 / |O(i)|`` directly from edge arrays."""
    adjacency = adjacency_from_edges(n, sources, targets, dtype=dtype)
    return _normalize_rows(adjacency)


def _normalize_rows(matrix: sparse.csr_matrix) -> sparse.csr_matrix:
    """Divide every non-empty CSR row by its entry count, in place."""
    row_counts = np.diff(matrix.indptr)
    if matrix.nnz:
        matrix.data /= np.repeat(row_counts, row_counts)
    return matrix


def adjacency_matrix(graph, dtype: type = np.float64) -> sparse.csr_matrix:
    """Return the adjacency matrix ``A`` with ``A[i, j] = 1`` iff ``i -> j``."""
    sources, targets = edge_arrays(graph)
    return adjacency_from_edges(graph.num_vertices, sources, targets, dtype=dtype)


def in_degree_vector(graph: DiGraph) -> np.ndarray:
    """Return the length-``n`` vector of in-degrees ``|I(v)|``."""
    return np.array(
        [graph.in_degree(vertex) for vertex in graph.vertices()], dtype=np.int64
    )


def out_degree_vector(graph: DiGraph) -> np.ndarray:
    """Return the length-``n`` vector of out-degrees ``|O(v)|``."""
    return np.array(
        [graph.out_degree(vertex) for vertex in graph.vertices()], dtype=np.int64
    )


def backward_transition_matrix(graph, dtype: type = np.float64) -> sparse.csr_matrix:
    """Return ``Q`` with ``Q[i, j] = 1 / |I(i)|`` for every edge ``j -> i``.

    Rows of vertices with no in-neighbours are all zero, matching the paper's
    convention that such vertices have similarity 0 with everything but
    themselves.  Every non-zero row sums to exactly 1.
    """
    sources, targets = edge_arrays(graph)
    return backward_transition_from_edges(
        graph.num_vertices, sources, targets, dtype=dtype
    )


def forward_transition_matrix(graph, dtype: type = np.float64) -> sparse.csr_matrix:
    """Return ``P`` with ``P[i, j] = 1 / |O(i)|`` for every edge ``i -> j``.

    This is the out-link analogue of :func:`backward_transition_matrix`; it is
    used by the P-Rank extension, which mixes in- and out-link recursions.
    """
    sources, targets = edge_arrays(graph)
    return forward_transition_from_edges(
        graph.num_vertices, sources, targets, dtype=dtype
    )
