"""Reading and writing graphs in the formats the paper's datasets use.

Two formats are supported:

* **SNAP-style edge lists** (``web-BerkStan.txt`` and the NBER patent file are
  distributed this way): whitespace-separated ``source target`` pairs, lines
  starting with ``#`` are comments.
* **Labelled JSON**: a small self-describing format that preserves vertex
  labels (author names for the DBLP-analogue co-authorship graphs) so query
  workloads survive a round trip to disk.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..exceptions import GraphBuildError
from .digraph import DiGraph, GraphBuilder

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_labeled_json",
    "write_labeled_json",
]

PathLike = Union[str, Path]


def read_edge_list(
    path: PathLike, comment_prefix: str = "#", name: str = ""
) -> DiGraph:
    """Read a SNAP-style whitespace-separated edge list.

    Vertex ids in the file may be arbitrary non-negative integers; they are
    remapped to a dense ``0 .. n-1`` range in first-seen order, matching how
    the paper's datasets are usually preprocessed.
    """
    path = Path(path)
    builder = GraphBuilder(name=name or path.stem)
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(comment_prefix):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise GraphBuildError(
                    f"{path}:{line_number}: expected 'source target', got {stripped!r}"
                )
            builder.add_edge(int(parts[0]), int(parts[1]))
    return builder.build(keep_labels=False)


def write_edge_list(graph: DiGraph, path: PathLike, header: bool = True) -> None:
    """Write ``graph`` as a SNAP-style edge list (vertex ids, not labels)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        if header:
            handle.write(f"# Directed graph: {graph.name or 'unnamed'}\n")
            handle.write(
                f"# Nodes: {graph.num_vertices} Edges: {graph.num_edges}\n"
            )
            handle.write("# FromNodeId\tToNodeId\n")
        for source, target in graph.edges():
            handle.write(f"{source}\t{target}\n")


def write_labeled_json(graph: DiGraph, path: PathLike) -> None:
    """Write ``graph`` (including labels) to a small JSON document."""
    path = Path(path)
    document = {
        "name": graph.name,
        "num_vertices": graph.num_vertices,
        "labels": [str(label) for label in graph.labels()]
        if graph.has_labels
        else None,
        "edges": [[source, target] for source, target in graph.edges()],
    }
    with path.open("w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1)


def read_labeled_json(path: PathLike) -> DiGraph:
    """Read a graph previously written by :func:`write_labeled_json`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        document = json.load(handle)
    try:
        n = int(document["num_vertices"])
        edges = [(int(source), int(target)) for source, target in document["edges"]]
    except (KeyError, TypeError, ValueError) as error:
        raise GraphBuildError(f"{path}: malformed graph document: {error}") from error
    labels = document.get("labels")
    return DiGraph(n, edges, labels=labels, name=document.get("name", path.stem))
