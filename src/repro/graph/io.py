"""Reading and writing graphs in the formats the paper's datasets use.

Two formats are supported:

* **SNAP-style edge lists** (``web-BerkStan.txt`` and the NBER patent file are
  distributed this way): whitespace-separated ``source target`` pairs, lines
  starting with ``#`` are comments.  Trailing inline comments after the two
  ids (``12 34  # resolved redirect``) are tolerated too — real SNAP dumps
  contain both styles.
* **Labelled JSON**: a small self-describing format that preserves vertex
  labels (author names for the DBLP-analogue co-authorship graphs) so query
  workloads survive a round trip to disk.

Edge-list reading has two engines.  The default ``"chunked"`` engine streams
the file in blocks of lines, converts each block's ids with one vectorised
NumPy string-to-``int64`` cast, and maintains the dense first-seen remapping
incrementally — per-edge work is array work, not Python ``int()`` calls and
dict lookups.  The ``"python"`` engine is the original per-line loop, kept as
the behavioural reference (the property tests assert the two engines parse
identically).  For large graphs, :func:`read_edge_list_streamed` feeds the
same blocks straight into an :class:`~repro.graph.edgelist.EdgeListGraph`
without ever building Python adjacency — the ingestion path of the
memory-bounded large-graph pipeline.
"""

from __future__ import annotations

import json
from collections.abc import Iterator
from pathlib import Path
from typing import Union

import numpy as np

from ..exceptions import GraphBuildError
from .digraph import DiGraph, GraphBuilder
from .edgelist import EdgeListGraph

__all__ = [
    "iter_edge_blocks",
    "read_edge_list",
    "read_edge_list_streamed",
    "write_edge_list",
    "read_labeled_json",
    "write_labeled_json",
]

PathLike = Union[str, Path]

DEFAULT_BLOCK_LINES = 1 << 16
"""Lines parsed per block by the chunked engine — bounds parser memory at
``O(block)`` regardless of file size."""

READ_ENGINES = ("chunked", "python")
"""Available :func:`read_edge_list` parse engines."""


def _parse_block(
    block: list[str],
    path: Path,
    first_line_number: int,
    comment_prefix: str,
) -> np.ndarray | None:
    """Parse one block of raw lines into an ``(m, 2)`` raw-id array.

    Comment lines, blank lines and trailing inline comments are stripped;
    tokens beyond the first two of a line are ignored (matching the per-line
    reference parser).  Returns ``None`` when the block holds no edges.
    """
    tokens: list[str] = []
    for offset, line in enumerate(block):
        body = line
        if comment_prefix in line:
            body = line.split(comment_prefix, 1)[0]
        parts = body.split()
        if not parts:
            continue
        if len(parts) < 2:
            raise GraphBuildError(
                f"{path}:{first_line_number + offset}: expected 'source target', "
                f"got {line.strip()!r}"
            )
        tokens.append(parts[0])
        tokens.append(parts[1])
    if not tokens:
        return None
    try:
        flat = np.array(tokens, dtype=np.int64)
    except (ValueError, OverflowError) as error:
        raise GraphBuildError(
            f"{path}: non-integer vertex id near line {first_line_number}: {error}"
        ) from error
    return flat.reshape(-1, 2)


def iter_edge_blocks(
    path: PathLike,
    comment_prefix: str = "#",
    block_lines: int = DEFAULT_BLOCK_LINES,
) -> Iterator[np.ndarray]:
    """Stream a SNAP-style edge list as ``(m, 2)`` ``int64`` blocks of raw ids.

    The file is read ``block_lines`` lines at a time and each block is parsed
    with one vectorised string-to-``int64`` conversion, so peak parser memory
    is ``O(block_lines)`` however large the file is.  Ids are *not* remapped;
    concatenating the yielded blocks reproduces the file's edge sequence
    (duplicates and self-loops included) in order.
    """
    path = Path(path)
    if block_lines <= 0:
        raise GraphBuildError(f"block_lines must be positive, got {block_lines}")
    line_number = 1
    with path.open("r", encoding="utf-8") as handle:
        while True:
            block = []
            for line in handle:
                block.append(line)
                if len(block) >= block_lines:
                    break
            if not block:
                return
            pairs = _parse_block(block, path, line_number, comment_prefix)
            line_number += len(block)
            if pairs is not None:
                yield pairs


class _DenseRemapper:
    """Incrementally remap arbitrary integer ids to dense first-seen order.

    Feeding the blocks of :func:`iter_edge_blocks` through :meth:`remap`
    reproduces exactly the id assignment of the per-line reference parser
    (``GraphBuilder`` registers ids in source-then-target, line-by-line
    order): within a block the first-seen order is recovered from
    ``np.unique``'s ``return_index``, and across blocks the mapping is
    carried in a dict keyed by raw id — ``O(vertices)`` Python work total,
    never ``O(edges)``.
    """

    def __init__(self) -> None:
        self._dense: dict[int, int] = {}

    @property
    def num_vertices(self) -> int:
        return len(self._dense)

    def remap(self, pairs: np.ndarray) -> np.ndarray:
        """Return ``pairs`` with raw ids replaced by dense first-seen ids."""
        # Row-major ravel interleaves (source, target, source, ...) — the
        # exact registration order of the per-line parser.
        flat = pairs.ravel()
        unique, first_position, inverse = np.unique(
            flat, return_index=True, return_inverse=True
        )
        dense_of_unique = np.empty(unique.size, dtype=np.int64)
        for position in np.argsort(first_position, kind="stable"):
            raw = int(unique[position])
            dense = self._dense.get(raw)
            if dense is None:
                dense = len(self._dense)
                self._dense[raw] = dense
            dense_of_unique[position] = dense
        return dense_of_unique[inverse].reshape(pairs.shape)

    def labels(self) -> list[int]:
        """Raw ids in dense-id order (the inverse mapping)."""
        ordered = [0] * len(self._dense)
        for raw, dense in self._dense.items():
            ordered[dense] = raw
        return ordered


def _no_edges_error(path: Path) -> GraphBuildError:
    return GraphBuildError(
        f"{path}: edge list contains no edges (only blank lines and comments); "
        "refusing to build an empty graph"
    )


def read_edge_list(
    path: PathLike,
    comment_prefix: str = "#",
    name: str = "",
    engine: str = "chunked",
    block_lines: int = DEFAULT_BLOCK_LINES,
) -> DiGraph:
    """Read a SNAP-style whitespace-separated edge list into a :class:`DiGraph`.

    Vertex ids in the file may be arbitrary integers; they are remapped to a
    dense ``0 .. n-1`` range in first-seen order, matching how the paper's
    datasets are usually preprocessed.  Blank lines, ``#`` comment lines and
    trailing inline comments are ignored; a file with no edges at all raises
    a clear :class:`~repro.exceptions.GraphBuildError` instead of producing
    an empty graph that crashes downstream.

    Parameters
    ----------
    path:
        The edge-list file.
    comment_prefix:
        Comment marker (``"#"`` for SNAP dumps).
    name:
        Graph name (defaults to the file stem).
    engine:
        ``"chunked"`` (default) parses the file in blocks with vectorised
        NumPy id conversion; ``"python"`` is the original per-line loop,
        kept as the behavioural reference.  Both produce identical graphs.
    block_lines:
        Lines per block for the chunked engine.
    """
    path = Path(path)
    if engine not in READ_ENGINES:
        raise GraphBuildError(
            f"unknown read engine {engine!r}; available: {', '.join(READ_ENGINES)}"
        )
    if engine == "python":
        return _read_edge_list_python(path, comment_prefix, name)
    remapper = _DenseRemapper()
    blocks = [
        remapper.remap(block)
        for block in iter_edge_blocks(
            path, comment_prefix=comment_prefix, block_lines=block_lines
        )
    ]
    if not blocks:
        raise _no_edges_error(path)
    # tolist() hands DiGraph plain int pairs — iterating ndarray rows would
    # cost a numpy scalar conversion per edge, dwarfing the parse savings.
    edges = np.concatenate(blocks, axis=0).tolist()
    return DiGraph(remapper.num_vertices, edges, name=name or path.stem)


def _read_edge_list_python(path: Path, comment_prefix: str, name: str) -> DiGraph:
    """The original per-line reference parser (``engine="python"``)."""
    builder = GraphBuilder(name=name or path.stem)
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            body = line
            if comment_prefix in line:
                body = line.split(comment_prefix, 1)[0]
            parts = body.split()
            if not parts:
                continue
            if len(parts) < 2:
                raise GraphBuildError(
                    f"{path}:{line_number}: expected 'source target', "
                    f"got {line.strip()!r}"
                )
            builder.add_edge(int(parts[0]), int(parts[1]))
    if builder.num_edges == 0:
        raise _no_edges_error(path)
    return builder.build(keep_labels=False)


def read_edge_list_streamed(
    path: PathLike,
    comment_prefix: str = "#",
    name: str = "",
    block_lines: int = DEFAULT_BLOCK_LINES,
) -> EdgeListGraph:
    """Stream a SNAP edge list straight into an :class:`EdgeListGraph`.

    The large-graph ingestion path: blocks of lines are parsed with
    vectorised NumPy conversion, remapped to dense first-seen ids on the
    fly, and collected as raw ``(sources, targets)`` arrays — no Python
    adjacency structures are ever built, so the result feeds directly into
    the CSR builders of :mod:`repro.graph.matrices`.  Duplicate edges and
    self-loops are kept verbatim (the CSR builders collapse duplicates),
    and the dense id assignment is identical to :func:`read_edge_list`.
    """
    path = Path(path)
    remapper = _DenseRemapper()
    source_parts: list[np.ndarray] = []
    target_parts: list[np.ndarray] = []
    for block in iter_edge_blocks(
        path, comment_prefix=comment_prefix, block_lines=block_lines
    ):
        remapped = remapper.remap(block)
        source_parts.append(np.ascontiguousarray(remapped[:, 0]))
        target_parts.append(np.ascontiguousarray(remapped[:, 1]))
    if not source_parts:
        raise _no_edges_error(path)
    return EdgeListGraph.from_arrays(
        remapper.num_vertices,
        np.concatenate(source_parts),
        np.concatenate(target_parts),
        name=name or path.stem,
    )


def write_edge_list(graph, path: PathLike, header: bool = True) -> None:
    """Write ``graph`` as a SNAP-style edge list (vertex ids, not labels).

    Accepts a :class:`DiGraph` or an :class:`EdgeListGraph` (anything with
    ``edges()``/``num_vertices``/``num_edges``).
    """
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        if header:
            handle.write(f"# Directed graph: {graph.name or 'unnamed'}\n")
            handle.write(
                f"# Nodes: {graph.num_vertices} Edges: {graph.num_edges}\n"
            )
            handle.write("# FromNodeId\tToNodeId\n")
        for source, target in graph.edges():
            handle.write(f"{source}\t{target}\n")


def write_labeled_json(graph: DiGraph, path: PathLike) -> None:
    """Write ``graph`` (including labels) to a small JSON document."""
    path = Path(path)
    document = {
        "name": graph.name,
        "num_vertices": graph.num_vertices,
        "labels": [str(label) for label in graph.labels()]
        if graph.has_labels
        else None,
        "edges": [[source, target] for source, target in graph.edges()],
    }
    with path.open("w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1)


def read_labeled_json(path: PathLike) -> DiGraph:
    """Read a graph previously written by :func:`write_labeled_json`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        document = json.load(handle)
    try:
        n = int(document["num_vertices"])
        edges = [(int(source), int(target)) for source, target in document["edges"]]
    except (KeyError, TypeError, ValueError) as error:
        raise GraphBuildError(f"{path}: malformed graph document: {error}") from error
    labels = document.get("labels")
    return DiGraph(n, edges, labels=labels, name=document.get("name", path.stem))
