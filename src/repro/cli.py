"""Command-line interface: regenerate any figure/table of the paper.

Examples
--------
Regenerate the dataset table and the density sweep::

    repro-simrank fig5
    repro-simrank fig6c --scale 0.5

Run everything quickly (small graphs, fewer sweep points)::

    repro-simrank all --quick

Reproduce a figure on a specific compute backend, or compare the dense and
sparse backends head to head::

    repro-simrank fig6a --backend sparse
    repro-simrank bench-backends --quick

Build a serving index offline, then benchmark the tiered online query path
(cold vs indexed vs cached) and dump the rows as JSON::

    repro-simrank index-build --out index.npz --rmat-scale 11 --index-k 50
    repro-simrank serve-bench --quick --json serving.json

Run a similarity server in the foreground, or load-test the network tier
over localhost with hundreds of concurrent asyncio clients (latency
percentiles, shed rate, SLO-driven degradation to the approx tier)::

    repro-simrank serve --rmat-scale 11 --port 7411 --slo-p99-ms 20
    repro-simrank serve-bench --remote --quick --json remote.json
    repro-simrank serve-bench --remote --clients 400 --slo-p99-ms 20

Exercise the memory-bounded large-graph pipeline (streamed SNAP ingestion,
out-of-core index build under a byte budget, Monte-Carlo approximate tier)::

    repro-simrank large-graph --memory-budget 256K --json large-graph.json
    repro-simrank index-build --out index.npz --memory-budget 1M
    repro-simrank serving --quick --approx

Ask the engine's cost-based planner what it would run — method, backend,
workers, serving tier and estimated cost per task shape — without running
anything, and check the two public surfaces stay bit-identical::

    repro-simrank explain --rmat-scale 11 --workers 4
    repro-simrank explain --memory-budget 64K --json plan.json
    repro-simrank engine-parity --quick

Calibrate this host — measure the real per-kernel rates the planner's
static weights only guess at — and price plans with the measured profile
(``explain`` then labels every constant measured instead of assumed)::

    repro-simrank calibrate
    repro-simrank calibrate --quick --out profile.json
    repro-simrank explain --cost-profile profile.json

Every subcommand builds one :class:`~repro.engine.config.EngineConfig` from
its flags (``--config config.json`` loads a saved one instead), so a CLI
run, a benchmark report and an ``Engine`` session all share the same
reproducible configuration format.

Evaluate the Section IV worked example (K' vs K at C=0.8, ε=1e-4)::

    repro-simrank bounds-example
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time
from collections.abc import Sequence

from .bench.experiments import (
    ablations,
    backends,
    engine_parity,
    fig5,
    fig6a,
    fig6b,
    fig6c,
    fig6d,
    fig6e,
    fig6f,
    fig6g,
    fig6h,
    large_graph,
    remote_serving,
    scaling,
    serving,
)
from .bench.results import format_report, write_reports_json
from .core.iteration_bounds import (
    conventional_iterations,
    differential_iterations_exact,
    differential_iterations_lambert,
    differential_iterations_log,
)

__all__ = ["main", "build_parser"]

_FIGURE_RUNNERS = {
    "fig5": fig5.run,
    "fig6a": fig6a.run,
    "fig6b": fig6b.run,
    "fig6c": fig6c.run,
    "fig6d": fig6d.run,
    "fig6e": fig6e.run,
    "fig6f": fig6f.run,
    "fig6g": fig6g.run,
    "fig6h": fig6h.run,
    "ablation-candidates": ablations.run_candidate_strategy,
    "ablation-budget": ablations.run_candidate_budget,
    "ablation-sharing": ablations.run_sharing_levels,
    "bench-backends": backends.run,
    "engine-parity": engine_parity.run,
    "large-graph": large_graph.run,
    "remote-serving": remote_serving.run,
    "scaling": scaling.run,
    "serving": serving.run,
}

_NETWORK_RUNNERS = frozenset({"remote-serving"})
"""Experiments excluded from ``all``: they bind sockets and drive load
over localhost — run them explicitly (``serve-bench --remote``)."""


def parse_memory_budget(text: str) -> int:
    """Parse a ``--memory-budget`` value: bytes, or with a K/M/G suffix."""
    text = text.strip()
    multipliers = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30}
    multiplier = multipliers.get(text[-1:].upper())
    if multiplier is not None:
        text = text[:-1]
    else:
        multiplier = 1
    try:
        value = int(float(text) * multiplier)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid memory budget {text!r}; use bytes or K/M/G suffix"
        ) from None
    if value <= 0:
        raise argparse.ArgumentTypeError("memory budget must be positive")
    return value


def _serving_flags() -> argparse.ArgumentParser:
    """The shared serving/benchmark flags, as one argparse parent.

    ``serve-bench``, the ``serving`` experiment and the ``serve``
    subcommand all accept the same execution knobs; defining them once
    keeps names, defaults and help text consistent across the surfaces
    (the satellite of the serving-tier redesign).
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "process-parallel worker count for the sharded execution engine "
            "(forwarded to index-build and to experiments that sweep or use "
            "workers, e.g. 'scaling' and 'serving'; 0 means all cores)"
        ),
    )
    parent.add_argument(
        "--memory-budget",
        type=parse_memory_budget,
        default=None,
        metavar="BYTES",
        help=(
            "byte cap on resident truncated rows during index builds "
            "(accepts K/M/G suffixes; spills segments to disk when exceeded; "
            "forwarded to index-build and the large-graph experiment)"
        ),
    )
    parent.add_argument(
        "--approx",
        action="store_true",
        help=(
            "also benchmark the Monte-Carlo approximate serving tier "
            "(forwarded to experiments that take it, e.g. 'serving')"
        ),
    )
    parent.add_argument(
        "--remote",
        action="store_true",
        help=(
            "serve-bench: benchmark the network serving tier over localhost "
            "TCP (concurrent asyncio clients against a SimilarityServer) "
            "instead of the in-process tiers"
        ),
    )
    parent.add_argument(
        "--clients",
        type=int,
        default=None,
        metavar="N",
        help=(
            "concurrent asyncio clients for serve-bench --remote "
            "(default 200, or 24 with --quick)"
        ),
    )
    parent.add_argument(
        "--slo-p99-ms",
        type=float,
        default=None,
        metavar="MS",
        help=(
            "p99 latency SLO in milliseconds for the serving tier; arms "
            "live-latency degradation to the approx tier (serve, "
            "serve-bench --remote, explain)"
        ),
    )
    parent.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        metavar="N",
        help=(
            "admission-control cap on concurrently admitted requests for "
            "the serve subcommand (default 256; overflow is shed with a "
            "retryable typed error)"
        ),
    )
    parent.add_argument(
        "--shed-policy",
        choices=("degrade", "shed"),
        default=None,
        help=(
            "what an armed SLO does on a p99 breach: 'degrade' (default) "
            "reroutes flexible queries to the approx tier, 'shed' only "
            "sheds at admission"
        ),
    )
    parent.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind/connect address for the network serving tier",
    )
    parent.add_argument(
        "--port",
        type=int,
        default=0,
        help="listening port for the serve subcommand (0 picks one)",
    )
    parent.add_argument(
        "--trace",
        action="store_true",
        help=(
            "enable request tracing where supported: serve-bench --remote "
            "sends traced queries and attaches a sample span tree to the "
            "report (tracing stays off for the load-driving fleet, so "
            "latency numbers are untraced)"
        ),
    )
    parent.add_argument(
        "--metrics-interval",
        type=float,
        default=30.0,
        metavar="SEC",
        help=(
            "seconds between metrics-snapshot log lines for the foreground "
            "serve subcommand (0 disables the periodic emitter; default 30)"
        ),
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-simrank",
        description=(
            "Reproduction harness for 'Towards Efficient SimRank Computation "
            "on Large Networks' (ICDE 2013)."
        ),
        parents=[_serving_flags()],
    )
    parser.add_argument(
        "experiment",
        choices=sorted(set(_FIGURE_RUNNERS) - _NETWORK_RUNNERS) + [
            "all",
            "bounds-example",
            "calibrate",
            "compact",
            "explain",
            "index-build",
            "metrics",
            "serve",
            "serve-bench",
        ],
        help=(
            "which figure/table to regenerate ('all' runs every one); "
            "'index-build' precomputes a serving index, 'compact' folds a "
            "durable catalog's delta segments into a new base, "
            "'serve-bench' runs "
            "the serving tier benchmark (--remote for the network tier), "
            "'serve' runs a similarity server in the foreground, 'metrics' "
            "fetches a running server's registry snapshot over the wire, "
            "'explain' "
            "prints the engine planner's execution plan without computing "
            "anything, 'calibrate' measures this host's kernel rates and "
            "persists a cost profile the planner prices plans with"
        ),
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="size multiplier for the generated dataset analogues (default 1.0)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use smaller graphs and fewer sweep points",
    )
    parser.add_argument(
        "--damping",
        type=float,
        default=None,
        help="override the damping factor C (defaults follow the paper)",
    )
    parser.add_argument(
        "--backend",
        choices=("dense", "sparse"),
        default=None,
        help=(
            "compute backend for matrix-form solvers (forwarded to the "
            "unified simrank() dispatch; algorithms that cannot honour it "
            "keep their default)"
        ),
    )
    parser.add_argument(
        "--method",
        default=None,
        help=(
            "all-pairs method for the engine planner ('auto' lets the cost "
            "model choose; only used by the explain subcommand)"
        ),
    )
    parser.add_argument(
        "--config",
        metavar="PATH",
        default=None,
        help=(
            "load an EngineConfig JSON file (as written by "
            "EngineConfig.to_json or an earlier 'explain --json' run) "
            "instead of building one from the flags above"
        ),
    )
    parser.add_argument(
        "--cost-profile",
        metavar="PATH",
        default=None,
        help=(
            "price plans with this calibrated cost-profile JSON (as written "
            "by the calibrate subcommand), or 'static' to pin the built-in "
            "weights; default resolves REPRO_COST_PROFILE, then the "
            "per-user profile, then static"
        ),
    )
    parser.add_argument(
        "--max-error",
        type=float,
        default=None,
        help=(
            "standard-error bound admitting the approximate serving tier "
            "(engine planner; only used by the explain subcommand)"
        ),
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help=(
            "also write the experiment report(s) to PATH as JSON (experiment "
            "runs only; ignored by index-build and bounds-example, which "
            "produce no report)"
        ),
    )
    serving_options = parser.add_argument_group(
        "serving options", "used by the index-build and explain subcommands"
    )
    serving_options.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help=(
            "output .npz path for the built index (index-build needs --out "
            "and/or --catalog)"
        ),
    )
    serving_options.add_argument(
        "--catalog",
        metavar="DIR",
        default=None,
        help=(
            "durable index catalog directory: index-build commits the "
            "built index there, serve warm-starts from it without a "
            "rebuild, and compact folds its delta segments into a new base"
        ),
    )
    serving_options.add_argument(
        "--rmat-scale",
        type=int,
        default=11,
        help="log2 vertex count of the generated r-mat graph (default 11)",
    )
    serving_options.add_argument(
        "--edge-factor",
        type=int,
        default=3,
        help="edges per vertex of the generated r-mat graph (default 3)",
    )
    serving_options.add_argument(
        "--index-k",
        type=int,
        default=50,
        help="scores kept per vertex in the built index (default 50)",
    )
    serving_options.add_argument(
        "--seed",
        type=int,
        default=7,
        help="graph-generation seed (default 7)",
    )
    return parser


def _run_one(name: str, args: argparse.Namespace):
    runner = _FIGURE_RUNNERS[name]
    kwargs: dict[str, object] = {"scale": args.scale, "quick": args.quick}
    if args.damping is not None:
        kwargs["damping"] = args.damping
    if args.backend is not None:
        kwargs["backend"] = args.backend
    if args.workers is not None:
        kwargs["workers"] = args.workers
    if args.memory_budget is not None:
        kwargs["memory_budget"] = args.memory_budget
    if args.approx:
        kwargs["approx"] = True
    if args.clients is not None:
        kwargs["clients"] = args.clients
    if args.slo_p99_ms is not None:
        kwargs["slo_p99_ms"] = args.slo_p99_ms
    if args.trace:
        kwargs["trace"] = True
    kwargs["host"] = args.host
    # Experiments accept different option subsets (the ablations take no
    # damping override, several figures no backend); forward what each takes.
    accepted = inspect.signature(runner).parameters
    kwargs = {key: value for key, value in kwargs.items() if key in accepted}
    return runner(**kwargs)


def _engine_config_from_args(args: argparse.Namespace):
    """Build (or load, with ``--config``) the run's :class:`EngineConfig`.

    Every subcommand funnels its knobs through this one record, so a CLI
    invocation is reproducible from the config JSON alone.
    """
    from pathlib import Path

    from .engine import EngineConfig

    if args.config is not None:
        return EngineConfig.from_json(Path(args.config).read_text())
    overrides: dict[str, object] = {}
    if args.damping is not None:
        overrides["damping"] = args.damping
    if args.method is not None:
        overrides["method"] = args.method
    if args.backend is not None:
        overrides["backend"] = args.backend
    if args.workers is not None:
        overrides["workers"] = args.workers
    if args.memory_budget is not None:
        overrides["memory_budget"] = args.memory_budget
    if getattr(args, "max_error", None) is not None:
        overrides["max_error"] = args.max_error
    if getattr(args, "slo_p99_ms", None) is not None:
        overrides["slo_p99_ms"] = args.slo_p99_ms
    if getattr(args, "max_inflight", None) is not None:
        overrides["max_inflight"] = args.max_inflight
    if getattr(args, "shed_policy", None) is not None:
        overrides["shed_policy"] = args.shed_policy
    if args.index_k is not None:
        overrides["index_k"] = args.index_k
    if getattr(args, "catalog", None) is not None:
        overrides["catalog_path"] = args.catalog
    if getattr(args, "cost_profile", None) is not None:
        overrides["cost_profile"] = args.cost_profile
    return EngineConfig(**overrides)


def _fixture_graph(args: argparse.Namespace):
    """The r-mat fixture the serving subcommands run against."""
    from .graph.generators.rmat import rmat_edge_list

    return rmat_edge_list(
        args.rmat_scale, args.edge_factor * (1 << args.rmat_scale), seed=args.seed
    )


def _explain(args: argparse.Namespace) -> int:
    """Print (and optionally dump as JSON) the engine's execution plan."""
    import json

    from .engine.engine import Engine

    config = _engine_config_from_args(args)
    graph = _fixture_graph(args)
    plan = Engine(graph, config).explain()
    print(plan.render())
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(plan.to_dict(), handle, indent=2, sort_keys=True)
        print(f"wrote execution plan to {args.json}")
    return 0


def _calibrate(args: argparse.Namespace) -> int:
    """Measure this host's kernel rates and persist a cost profile.

    ``--quick`` shrinks the synthetic operators and repeat counts (the CI
    smoke mode); ``--out`` overrides the destination (default: the
    per-user profile every later run picks up automatically).
    """
    from .calibrate import ENV_VAR, calibrate, default_profile_path

    started = time.perf_counter()
    profile = calibrate(quick=args.quick)
    elapsed = time.perf_counter() - started
    destination = args.out if args.out is not None else default_profile_path()
    path = profile.save(destination)
    unit = profile.seconds_per_op("sparse_matvec")
    print(f"calibrated {len(profile.kernels)} kernels in {elapsed:.2f}s:")
    for name, measurement in sorted(profile.kernels.items()):
        weight = (
            f" ({measurement.seconds_per_op / unit:8.3f}x sparse matvec)"
            if unit
            else ""
        )
        print(
            f"  {name:20s} {measurement.seconds_per_op:.3e} s/op{weight}"
        )
    print(f"profile digest {profile.digest()} -> {path}")
    if args.out is not None:
        print(
            f"activate it with {ENV_VAR}={path} or --cost-profile {path} "
            "(the default path is picked up automatically)"
        )
    return 0


def _index_build(args: argparse.Namespace) -> int:
    """Precompute a serving index for an r-mat graph and write it to disk.

    ``--out`` writes the legacy single-``.npz`` store, ``--catalog``
    commits a durable catalog directory (the engine does so as part of the
    build when ``catalog_path`` is configured); pass either or both.
    """
    from .engine.engine import Engine
    from .service import save_index

    if args.out is None and args.catalog is None:
        print("index-build requires --out PATH and/or --catalog DIR", file=sys.stderr)
        return 2
    config = _engine_config_from_args(args)
    graph = _fixture_graph(args)
    started = time.perf_counter()
    with Engine(graph, config) as engine:
        index = engine.build_index()
    elapsed = time.perf_counter() - started
    destinations = []
    if args.out is not None:
        save_index(index, args.out)
        destinations.append(args.out)
    if args.catalog is not None:
        destinations.append(f"{args.catalog} (catalog)")
    print(
        f"built top-{config.index_k} index for n={graph.num_vertices} "
        f"m={graph.num_edges} in {elapsed:.2f}s "
        f"({index.num_stored_scores} stored scores, "
        f"{index.memory_bytes() / 1e6:.1f} MB) -> {', '.join(destinations)}"
    )
    return 0


def _compact(args: argparse.Namespace) -> int:
    """Fold a catalog's committed delta segments into a new base generation."""
    from .catalog import IndexCatalog

    if args.catalog is None:
        print("compact requires --catalog DIR", file=sys.stderr)
        return 2
    if not IndexCatalog.is_catalog(args.catalog):
        print(f"{args.catalog} is not an index catalog", file=sys.stderr)
        return 2
    catalog = IndexCatalog.open(args.catalog)
    started = time.perf_counter()
    folded = catalog.compact(memory_budget=args.memory_budget)
    elapsed = time.perf_counter() - started
    manifest = catalog.manifest
    print(
        f"compacted {folded} delta segment(s) into {manifest.base_name} in "
        f"{elapsed:.2f}s (graph version {manifest.graph_version}, "
        f"n={manifest.num_vertices}, index_k={manifest.index_k})"
    )
    return 0


def _metrics(args: argparse.Namespace) -> int:
    """Fetch and render a running server's metrics snapshot over the wire."""
    import json

    from .obs import render_snapshot
    from .serve.client import SimilarityClient
    from .service.requests import ServeError

    if not args.port:
        print("metrics requires --port PORT (the server's port)", file=sys.stderr)
        return 2
    try:
        client = SimilarityClient(args.host, args.port)
    except OSError as error:
        print(
            f"cannot connect to {args.host}:{args.port}: {error}",
            file=sys.stderr,
        )
        return 1
    try:
        payload = client.metrics()
    except ServeError as error:
        print(f"metrics request failed: {error}", file=sys.stderr)
        return 1
    finally:
        client.close()
    body = dict(payload.get("metrics", {}))
    body["slow_queries"] = payload.get("slow_queries", [])
    body["plan_digest"] = payload.get("plan_digest")
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote metrics snapshot to {args.json}")
    else:
        print(render_snapshot(body))
    return 0


def _serve(args: argparse.Namespace) -> int:
    """Run a similarity server in the foreground until interrupted."""
    import asyncio
    import logging

    from .engine.engine import Engine
    from .obs import PeriodicEmitter

    config = _engine_config_from_args(args)
    graph = _fixture_graph(args)
    engine = Engine(graph, config)
    # Warm the artifact the serving plan selects, plus fingerprints so
    # SLO-driven degradation has an approx tier to fall back on.  A
    # committed catalog replaces the index build: engine.serve() opens it
    # memory-mapped (and falls back with a warning if it doesn't match).
    plan = engine.plan("serve")
    catalog_ready = False
    if config.catalog_path is not None:
        from .catalog import IndexCatalog

        catalog_ready = IndexCatalog.is_catalog(config.catalog_path)
        if catalog_ready:
            print(f"serving from catalog at {config.catalog_path}", flush=True)
    if plan.tier == "index" and not catalog_ready:
        engine.build_index()
    engine.build_fingerprints()
    server = engine.server(host=args.host, port=args.port)

    emitter = None
    if args.metrics_interval and args.metrics_interval > 0:
        # The emitter funnels through logging (the instrumentation policy:
        # libraries never print); the foreground command wires a handler so
        # the lines actually reach the terminal.
        if not logging.getLogger().handlers:
            logging.basicConfig(
                level=logging.INFO, format="%(asctime)s %(name)s %(message)s"
            )
        emitter = PeriodicEmitter(
            lambda: server.registry.merged_snapshot(server.service.registry),
            interval=args.metrics_interval,
        )

    async def main() -> None:
        await server.start()
        print(
            f"serving n={graph.num_vertices} m={graph.num_edges} on "
            f"{server.host}:{server.port} "
            f"(tier plan: {plan.tier}, slo_p99_ms={config.slo_p99_ms}, "
            f"shed_policy={config.shed_policy}); ctrl-c to stop",
            flush=True,
        )
        if emitter is not None:
            emitter.start()
        await server.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    finally:
        if emitter is not None:
            emitter.stop()
    return 0


def _bounds_example(damping: float = 0.8, accuracy: float = 1e-4) -> str:
    """Reproduce the Section IV worked example as plain text."""
    lines = [
        f"Section IV worked example (C={damping}, epsilon={accuracy}):",
        f"  conventional SimRank:  K  = {conventional_iterations(accuracy, damping)}"
        "  (paper: 41)",
        f"  differential exact:    K' = {differential_iterations_exact(accuracy, damping)}",
        f"  Lambert-W estimate:    K' = {differential_iterations_lambert(accuracy, damping)}"
        "  (paper: 7)",
        f"  Log estimate:          K' = {differential_iterations_log(accuracy, damping)}"
        "  (paper: 7)",
    ]
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.experiment == "bounds-example":
        damping = args.damping if args.damping is not None else 0.8
        print(_bounds_example(damping=damping))
        return 0
    if args.experiment == "explain":
        return _explain(args)
    if args.experiment == "calibrate":
        return _calibrate(args)
    if args.experiment == "index-build":
        return _index_build(args)
    if args.experiment == "compact":
        return _compact(args)
    if args.experiment == "metrics":
        return _metrics(args)
    if args.experiment == "serve":
        return _serve(args)

    if args.experiment == "all":
        names = sorted(set(_FIGURE_RUNNERS) - _NETWORK_RUNNERS)
    elif args.experiment == "serve-bench":
        names = ["remote-serving" if args.remote else "serving"]
    else:
        names = [args.experiment]
    reports = []
    for name in names:
        report = _run_one(name, args)
        reports.append(report)
        print(format_report(report))
        print()
    if args.json is not None:
        path = write_reports_json(reports, args.json)
        print(f"wrote {len(reports)} report(s) to {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
