"""Command-line interface: regenerate any figure/table of the paper.

Examples
--------
Regenerate the dataset table and the density sweep::

    repro-simrank fig5
    repro-simrank fig6c --scale 0.5

Run everything quickly (small graphs, fewer sweep points)::

    repro-simrank all --quick

Reproduce a figure on a specific compute backend, or compare the dense and
sparse backends head to head::

    repro-simrank fig6a --backend sparse
    repro-simrank bench-backends --quick

Evaluate the Section IV worked example (K' vs K at C=0.8, ε=1e-4)::

    repro-simrank bounds-example
"""

from __future__ import annotations

import argparse
import inspect
import sys
from collections.abc import Sequence

from .bench.experiments import (
    ablations,
    backends,
    fig5,
    fig6a,
    fig6b,
    fig6c,
    fig6d,
    fig6e,
    fig6f,
    fig6g,
    fig6h,
)
from .bench.results import format_report
from .core.iteration_bounds import (
    conventional_iterations,
    differential_iterations_exact,
    differential_iterations_lambert,
    differential_iterations_log,
)

__all__ = ["main", "build_parser"]

_FIGURE_RUNNERS = {
    "fig5": fig5.run,
    "fig6a": fig6a.run,
    "fig6b": fig6b.run,
    "fig6c": fig6c.run,
    "fig6d": fig6d.run,
    "fig6e": fig6e.run,
    "fig6f": fig6f.run,
    "fig6g": fig6g.run,
    "fig6h": fig6h.run,
    "ablation-candidates": ablations.run_candidate_strategy,
    "ablation-budget": ablations.run_candidate_budget,
    "ablation-sharing": ablations.run_sharing_levels,
    "bench-backends": backends.run,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-simrank",
        description=(
            "Reproduction harness for 'Towards Efficient SimRank Computation "
            "on Large Networks' (ICDE 2013)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_FIGURE_RUNNERS) + ["all", "bounds-example"],
        help="which figure/table to regenerate ('all' runs every one)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="size multiplier for the generated dataset analogues (default 1.0)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use smaller graphs and fewer sweep points",
    )
    parser.add_argument(
        "--damping",
        type=float,
        default=None,
        help="override the damping factor C (defaults follow the paper)",
    )
    parser.add_argument(
        "--backend",
        choices=("dense", "sparse"),
        default=None,
        help=(
            "compute backend for matrix-form solvers (forwarded to the "
            "unified simrank() dispatch; algorithms that cannot honour it "
            "keep their default)"
        ),
    )
    return parser


def _run_one(name: str, args: argparse.Namespace) -> str:
    runner = _FIGURE_RUNNERS[name]
    kwargs: dict[str, object] = {"scale": args.scale, "quick": args.quick}
    if args.damping is not None:
        kwargs["damping"] = args.damping
    if args.backend is not None:
        kwargs["backend"] = args.backend
    # Experiments accept different option subsets (the ablations take no
    # damping override, several figures no backend); forward what each takes.
    accepted = inspect.signature(runner).parameters
    kwargs = {key: value for key, value in kwargs.items() if key in accepted}
    report = runner(**kwargs)
    return format_report(report)


def _bounds_example(damping: float = 0.8, accuracy: float = 1e-4) -> str:
    """Reproduce the Section IV worked example as plain text."""
    lines = [
        f"Section IV worked example (C={damping}, epsilon={accuracy}):",
        f"  conventional SimRank:  K  = {conventional_iterations(accuracy, damping)}"
        "  (paper: 41)",
        f"  differential exact:    K' = {differential_iterations_exact(accuracy, damping)}",
        f"  Lambert-W estimate:    K' = {differential_iterations_lambert(accuracy, damping)}"
        "  (paper: 7)",
        f"  Log estimate:          K' = {differential_iterations_log(accuracy, damping)}"
        "  (paper: 7)",
    ]
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.experiment == "bounds-example":
        damping = args.damping if args.damping is not None else 0.8
        print(_bounds_example(damping=damping))
        return 0

    names = (
        sorted(_FIGURE_RUNNERS) if args.experiment == "all" else [args.experiment]
    )
    for name in names:
        print(_run_one(name, args))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
