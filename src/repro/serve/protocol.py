"""Wire framing for the similarity server: length-prefixed JSON.

One message is one *frame*::

    +----------------+----------------------------------+
    | length (4 B)   | payload (UTF-8 JSON object)      |
    | big-endian u32 | exactly ``length`` bytes         |
    +----------------+----------------------------------+

The payload is a flat JSON object tagged by its ``"op"`` key — the wire
form of the :class:`~repro.service.requests.QueryRequest` /
:class:`~repro.service.requests.QueryResponse` /
:class:`~repro.service.requests.ServeError` dataclasses plus the small
control ops (``ping``/``pong``, ``stats``).  Frames larger than
:data:`MAX_FRAME` are rejected before the payload is read, so a corrupt
or hostile length prefix cannot make either side buffer unbounded input.

Both framing directions are provided for asyncio streams
(:func:`read_message` / :func:`write_message`) and for plain blocking
sockets (:func:`recv_message` / :func:`send_message`) — the sync client
and tests use the latter, the server and async client the former.  All
decode failures raise :class:`~repro.service.requests.ServeError` with
``BAD_REQUEST``; a cleanly closed peer reads as ``None``.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Optional

from ..service.requests import ErrorCode, ServeError

__all__ = [
    "MAX_FRAME",
    "decode_frame",
    "encode_frame",
    "read_message",
    "recv_message",
    "send_message",
    "write_message",
]

MAX_FRAME = 1 << 20
"""Maximum payload size in bytes (1 MiB).

Generous for this protocol — the largest legitimate message is a top-k
result, tens of bytes per entry — while bounding what one frame can make
the peer buffer.
"""

_HEADER = struct.Struct(">I")


def encode_frame(payload: dict) -> bytes:
    """Serialise one message to its wire frame (header + JSON bytes)."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise ServeError(
            ErrorCode.BAD_REQUEST,
            f"message of {len(body)} bytes exceeds the {MAX_FRAME} byte "
            "frame limit",
        )
    return _HEADER.pack(len(body)) + body


def decode_frame(body: bytes) -> dict:
    """Parse one frame payload back into a message dict."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ServeError(
            ErrorCode.BAD_REQUEST, f"frame is not valid JSON: {error}"
        ) from None
    if not isinstance(payload, dict):
        raise ServeError(
            ErrorCode.BAD_REQUEST,
            f"frame must decode to a JSON object, got "
            f"{type(payload).__name__}",
        )
    return payload


def _check_length(length: int) -> None:
    if length > MAX_FRAME:
        raise ServeError(
            ErrorCode.BAD_REQUEST,
            f"declared frame length {length} exceeds the {MAX_FRAME} byte "
            "limit",
        )


# --------------------------------------------------------------------- #
# asyncio streams
# --------------------------------------------------------------------- #
async def read_message(reader: asyncio.StreamReader) -> Optional[dict]:
    """Read one message; ``None`` when the peer closed cleanly.

    A connection that drops mid-frame raises
    :class:`asyncio.IncompleteReadError` — callers treat it like any other
    transport failure.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:  # clean EOF between frames
            return None
        raise
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    body = await reader.readexactly(length)
    return decode_frame(body)


async def write_message(writer: asyncio.StreamWriter, payload: dict) -> None:
    """Write one message frame and drain the transport."""
    writer.write(encode_frame(payload))
    await writer.drain()


# --------------------------------------------------------------------- #
# blocking sockets
# --------------------------------------------------------------------- #
def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count:  # clean EOF between frames
                return None
            raise ServeError(
                ErrorCode.UNAVAILABLE,
                "connection closed mid-frame",
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Optional[dict]:
    """Read one message from a blocking socket; ``None`` on clean EOF."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    body = _recv_exact(sock, length)
    if body is None:
        raise ServeError(ErrorCode.UNAVAILABLE, "connection closed mid-frame")
    return decode_frame(body)


def send_message(sock: socket.socket, payload: dict) -> None:
    """Write one message frame to a blocking socket."""
    sock.sendall(encode_frame(payload))
