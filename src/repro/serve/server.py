"""The asyncio network front-end over a :class:`SimilarityService`.

:class:`SimilarityServer` accepts length-prefixed JSON connections
(:mod:`repro.serve.protocol`) and feeds every admitted query into the
*same* request pipeline in-process callers use —
:meth:`SimilarityService.query_many` — so network answers are
bit-identical to in-process answers over the same service.

The data path is admission → queue → dispatcher → pipeline:

* **Admission** (per message, on the event loop): the frame is parsed
  into a :class:`~repro.service.requests.QueryRequest` and validated
  against the service immediately — a defective request is answered with
  its own typed error and never joins a batch.  Valid requests are
  admitted only while the inflight count is below ``max_inflight`` and
  the dispatch queue below ``queue_depth``; past either bound the server
  *sheds*: a typed ``SHED`` error is written straight back, so an
  overloaded server answers in microseconds instead of timing out.
* **Dispatcher** (one task): drains the queue into batches and resolves
  each batch with one ``query_many`` call in a worker thread — concurrent
  requests from independent connections coalesce into the service's
  micro-batcher exactly like a batched in-process call, which is where
  the paper's shared-partial-sums amortisation pays off under load.
* **Degradation**: each answered request's admission-to-response latency
  feeds an :class:`~repro.serve.slo.SLOController`.  While the live p99
  breaches ``slo_p99_ms`` (and ``shed_policy="degrade"``), the dispatcher
  routes *undecided* queries (``approx=None``) to the Monte-Carlo tier —
  the planner's index→approx→compute preference driven by measured
  latency instead of static budgets.  Queries that explicitly demand
  exactness (``approx=False``) are never degraded, and with
  ``shed_policy="shed"`` the server shreds load instead of loosening it.

Responses may return out of request order on one connection (each carries
the request's ``id``); writes are serialised per connection.  The server
runs inside any event loop (``await server.start()``) or on a dedicated
background thread (:meth:`SimilarityServer.start_in_thread`) for tests,
benchmarks and the CLI.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Optional

from ..exceptions import ConfigurationError
from ..obs import MetricsRegistry, Trace
from ..service.requests import (
    PROTOCOL_VERSION,
    ErrorCode,
    QueryRequest,
    ServeError,
)
from ..service.service import SimilarityService
from .protocol import read_message, write_message
from .slo import SLOController

__all__ = ["SimilarityServer"]


@dataclass
class _Admitted:
    """One admitted query waiting for the dispatcher."""

    request: QueryRequest
    future: asyncio.Future
    admitted_at: float
    degraded: bool = field(default=False)
    # Tracing timestamps (``time.perf_counter``), set only for traced
    # requests: message receipt and enqueue time, for the admission and
    # queue-wait spans.
    received_perf: Optional[float] = field(default=None)
    enqueued_perf: Optional[float] = field(default=None)


class SimilarityServer:
    """Serve a :class:`SimilarityService` over asyncio TCP.

    Parameters
    ----------
    service:
        The tiered service to serve; usually ``engine.serve()`` — or use
        :meth:`Engine.server` which wires the settings below from the
        session's :class:`~repro.engine.config.EngineConfig`.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read
        ``server.port`` after :meth:`start`).
    max_inflight:
        Admitted-but-unanswered requests allowed before shedding.
    queue_depth:
        Dispatch-queue bound; arrivals beyond it are shed.
    slo_p99_ms:
        Live p99 target driving degradation; ``None`` disables it.
    shed_policy:
        ``"degrade"`` (route undecided queries to the approx tier while
        the SLO is breached) or ``"shed"`` (never degrade).
    max_batch:
        Dispatcher batch bound; defaults to the service batcher's
        ``max_batch`` so one drain fills one micro-batch.
    """

    def __init__(
        self,
        service: SimilarityService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_inflight: int = 256,
        queue_depth: int = 1024,
        slo_p99_ms: Optional[float] = None,
        shed_policy: str = "degrade",
        max_batch: Optional[int] = None,
    ) -> None:
        if shed_policy not in ("degrade", "shed"):
            raise ConfigurationError(
                f"shed_policy must be 'degrade' or 'shed', got {shed_policy!r}"
            )
        if max_inflight <= 0:
            raise ConfigurationError(
                f"max_inflight must be positive, got {max_inflight}"
            )
        if queue_depth <= 0:
            raise ConfigurationError(
                f"queue_depth must be positive, got {queue_depth}"
            )
        self.service = service
        self.host = host
        self.port = int(port)
        self.max_inflight = int(max_inflight)
        self.queue_depth = int(queue_depth)
        self.shed_policy = shed_policy
        self.max_batch = int(
            service.batcher.max_batch if max_batch is None else max_batch
        )
        if self.max_batch <= 0:
            raise ConfigurationError(
                f"max_batch must be positive, got {self.max_batch}"
            )
        self.registry = MetricsRegistry()
        """Server-side metrics registry (admission counters plus the SLO
        controller's instruments); merged with the service's registry for
        the wire ``metrics`` op."""
        self.slo = SLOController(slo_p99_ms, registry=self.registry)

        # Counters (mutated on the event loop only; registry-backed so
        # they export, with the historical attributes as read-only views).
        self._received = self.registry.counter("server_requests_received")
        self._admitted = self.registry.counter("server_requests_admitted")
        self._answered = self.registry.counter("server_requests_answered")
        self._shed = self.registry.counter("server_requests_shed")
        self._failed = self.registry.counter("server_requests_failed")
        self._degraded_queries = self.registry.counter("server_degraded_queries")
        self._inflight_gauge = self.registry.gauge("server_inflight")

        self._inflight = 0
        self._queue: Optional[asyncio.Queue] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._stop_event: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    # Counter views (historical attribute names)
    # ------------------------------------------------------------------ #
    @property
    def requests_received(self) -> int:
        return int(self._received.value)

    @property
    def requests_admitted(self) -> int:
        return int(self._admitted.value)

    @property
    def requests_answered(self) -> int:
        return int(self._answered.value)

    @property
    def requests_shed(self) -> int:
        return int(self._shed.value)

    @property
    def requests_failed(self) -> int:
        return int(self._failed.value)

    @property
    def degraded_queries(self) -> int:
        return int(self._degraded_queries.value)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> "SimilarityServer":
        """Bind the listening socket and start the dispatcher task."""
        if self._server is not None:
            raise ConfigurationError("server already started")
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.queue_depth)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._dispatcher = self._loop.create_task(self._dispatch_loop())
        return self

    async def stop(self) -> None:
        """Stop serving: shed queued work, close every connection."""
        if self._server is None:
            return
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._dispatcher
            self._dispatcher = None
        assert self._queue is not None
        while not self._queue.empty():
            item = self._queue.get_nowait()
            if not item.future.done():
                item.future.set_exception(
                    ServeError(
                        ErrorCode.UNAVAILABLE,
                        "server shutting down",
                        request_id=item.request.request_id,
                    )
                )
        self._server.close()
        await self._server.wait_closed()
        for writer in list(self._writers):
            writer.close()
        # One scheduling tick lets handler tasks observe the failures and
        # the closed transports before the loop is torn down.
        await asyncio.sleep(0)
        self._server = None

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        finally:
            await self.stop()

    # ------------------------------------------------------------------ #
    # Background-thread harness (tests, benchmarks, simple embedding)
    # ------------------------------------------------------------------ #
    def start_in_thread(self, timeout: float = 10.0) -> "SimilarityServer":
        """Run the server on a dedicated daemon thread with its own loop.

        Returns once the port is bound; pair with :meth:`stop_in_thread`.
        """
        if self._thread is not None:
            raise ConfigurationError("server thread already running")
        ready = threading.Event()
        failure: list[BaseException] = []

        async def main() -> None:
            try:
                await self.start()
                self._stop_event = asyncio.Event()
            except BaseException as error:  # surface bind failures
                failure.append(error)
                ready.set()
                return
            ready.set()
            await self._stop_event.wait()
            await self.stop()

        self._thread = threading.Thread(
            target=lambda: asyncio.run(main()),
            name="similarity-server",
            daemon=True,
        )
        self._thread.start()
        if not ready.wait(timeout):
            raise ConfigurationError("server thread failed to start in time")
        if failure:
            self._thread.join(timeout)
            self._thread = None
            raise failure[0]
        return self

    def stop_in_thread(self, timeout: float = 10.0) -> None:
        """Stop a :meth:`start_in_thread` server and join its thread."""
        if self._thread is None:
            return
        assert self._loop is not None and self._stop_event is not None
        self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout)
        self._thread = None

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    payload = await read_message(reader)
                except ServeError as error:
                    # Framing is broken (oversized/invalid frame); report
                    # and drop the connection — there is no resync point.
                    await self._send(writer, write_lock, error.to_wire())
                    break
                if payload is None:
                    break
                task = asyncio.ensure_future(
                    self._handle_message(payload, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            BrokenPipeError,
        ):
            pass  # peer vanished mid-frame; nothing to answer
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            self._writers.discard(writer)
            writer.close()
            with contextlib.suppress(ConnectionError, BrokenPipeError):
                await writer.wait_closed()

    async def _handle_message(
        self,
        payload: dict,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        self._received.inc()
        op = payload.get("op")
        if op == "ping":
            await self._send(
                writer, write_lock, {"op": "pong", "v": PROTOCOL_VERSION}
            )
        elif op == "stats":
            await self._send(
                writer,
                write_lock,
                {
                    "op": "stats",
                    "v": PROTOCOL_VERSION,
                    "server": self.snapshot(),
                    "tiers": self.service.stats.snapshot(),
                },
            )
        elif op == "metrics":
            await self._send(writer, write_lock, self.metrics_payload())
        elif op == "query":
            await self._handle_query(payload, writer, write_lock)
        else:
            error = ServeError(
                ErrorCode.BAD_REQUEST,
                f"unknown op {op!r}",
                request_id=_payload_id(payload),
            )
            await self._send(writer, write_lock, error.to_wire())

    async def _handle_query(
        self,
        payload: dict,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        received_perf = time.perf_counter() if payload.get("trace") else None
        try:
            request = QueryRequest.from_wire(payload)
            request = self.service.validate_request(request)
        except ServeError as error:
            self._failed.inc()
            await self._send(
                writer,
                write_lock,
                error.with_request_id(_payload_id(payload)).to_wire(),
            )
            return

        assert self._queue is not None and self._loop is not None
        if self._inflight >= self.max_inflight or self._queue.full():
            self._shed.inc()
            shed = ServeError(
                ErrorCode.SHED,
                "server over capacity "
                f"(inflight={self._inflight}/{self.max_inflight}, "
                f"queued={self._queue.qsize()}/{self.queue_depth})",
                request_id=request.request_id,
            )
            await self._send(writer, write_lock, shed.to_wire())
            return

        self._admitted.inc()
        self._inflight += 1
        item = _Admitted(
            request=request,
            future=self._loop.create_future(),
            admitted_at=self._loop.time(),
            received_perf=received_perf,
        )
        if request.trace:
            item.enqueued_perf = time.perf_counter()
        # Capacity was checked above and nothing awaited since; the queue
        # cannot be full here.
        self._queue.put_nowait(item)
        try:
            response = await item.future
        except ServeError as error:
            self._failed.inc()
            await self._send(writer, write_lock, error.to_wire())
            return
        finally:
            self._inflight -= 1
        self._answered.inc()
        await self._send(writer, write_lock, response.to_wire())

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        payload: dict,
    ) -> None:
        with contextlib.suppress(ConnectionError, BrokenPipeError):
            async with write_lock:
                await write_message(writer, payload)

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    async def _dispatch_loop(self) -> None:
        assert self._queue is not None and self._loop is not None
        while True:
            item = await self._queue.get()
            batch = [item]
            while len(batch) < self.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            await self._dispatch_batch(batch)

    async def _dispatch_batch(self, batch: list[_Admitted]) -> None:
        assert self._loop is not None
        degrade = (
            self.slo.degraded
            and self.shed_policy == "degrade"
            and self.service.fingerprints is not None
        )
        requests: list[QueryRequest] = []
        for item in batch:
            request = item.request
            if degrade and request.approx is None:
                # Undecided queries ride the approx tier while degraded;
                # explicit approx=False stays exact — degradation loosens
                # defaults, never overrides a caller's demand.
                request = replace(request, approx=True)
                item.degraded = True
                self._degraded_queries.inc()
            requests.append(request)
        dispatch_started = time.perf_counter()
        try:
            responses = await self._loop.run_in_executor(
                None, self.service.query_many, requests
            )
        except Exception as error:  # noqa: BLE001 — every failure is typed below
            now = self._loop.time()
            for item in batch:
                self.slo.observe(now - item.admitted_at)
                if not item.future.done():
                    item.future.set_exception(
                        ServeError.wrap(
                            error, request_id=item.request.request_id
                        )
                    )
            return
        now = self._loop.time()
        dispatch_ended = time.perf_counter()
        for item, response in zip(batch, responses):
            self.slo.observe(now - item.admitted_at)
            if item.request.trace:
                response = self._graft_trace(
                    item, response, dispatch_started, dispatch_ended
                )
            if not item.future.done():
                item.future.set_result(response)

    def _graft_trace(self, item, response, dispatch_started, dispatch_ended):
        """Wrap the service's span tree in the server-side spans.

        The result covers the full network path — admission (frame parse +
        validation), dispatch-queue wait, and the dispatcher's
        ``query_many`` call, with the service's own tree (tier probe →
        batcher → kernel) nested under the dispatch span — and rides back
        on the response's ``trace`` field.
        """
        service_tree = response.trace
        origin = (
            item.received_perf
            if item.received_perf is not None
            else item.enqueued_perf
        )
        enqueued = item.enqueued_perf
        if origin is None or enqueued is None:
            return response
        trace = Trace(
            "request",
            trace_id=(service_tree or {}).get("trace_id"),
            start=origin,
            degraded=item.degraded,
        )
        trace.root.record("admission", origin, enqueued)
        trace.root.record("queue", enqueued, dispatch_started)
        trace.root.record("dispatch", dispatch_started, dispatch_ended)
        trace.root.finish(dispatch_ended)
        tree = trace.to_tree()
        if service_tree is not None:
            tree["children"][-1].setdefault("children", []).append(service_tree)
        return replace(response, trace=tree)

    def metrics_payload(self) -> dict[str, object]:
        """The wire ``metrics`` response: full registry snapshot + extras.

        Merges the server's registry (admission counters, SLO instruments)
        with the service's (tier hits/latencies, batcher counters) and
        attaches the slow-query log and the serving plan digest.
        """
        self._inflight_gauge.set(self._inflight)
        return {
            "op": "metrics",
            "v": PROTOCOL_VERSION,
            "metrics": self.registry.merged_snapshot(self.service.registry),
            "slow_queries": self.service.slow_queries.snapshot(),
            "plan_digest": self.service.plan_digest,
        }

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict[str, object]:
        """Server-side counters for the ``stats`` op and benchmarks."""
        received = self.requests_received
        return {
            "received": received,
            "admitted": self.requests_admitted,
            "answered": self.requests_answered,
            "shed": self.requests_shed,
            "failed": self.requests_failed,
            "shed_rate": self.requests_shed / received if received else 0.0,
            "degraded_queries": self.degraded_queries,
            "inflight": self._inflight,
            "max_inflight": self.max_inflight,
            "queue_depth": self.queue_depth,
            "shed_policy": self.shed_policy,
            "slo": self.slo.snapshot(),
        }

    def __repr__(self) -> str:
        return (
            f"<SimilarityServer {self.host}:{self.port} "
            f"inflight={self._inflight} shed={self.requests_shed}>"
        )


def _payload_id(payload: dict) -> Optional[int]:
    """Best-effort request id recovery for error responses."""
    request_id = payload.get("id")
    if isinstance(request_id, int) and not isinstance(request_id, bool):
        return request_id
    return None
