"""Network serving: an asyncio front-end over the similarity service.

The in-process serving stack (:mod:`repro.service`) answers queries
through a tiered path; this package puts it on the network without
forking that path.  A :class:`SimilarityServer` speaks a length-prefixed
JSON protocol (:mod:`repro.serve.protocol`), validates and admits each
frame into the *same* :class:`~repro.service.requests.QueryRequest`
pipeline the in-process API uses, coalesces concurrent requests from
independent connections into the service's micro-batcher, and defends
its latency SLO with bounded queues (load shedding) and live-p99-driven
degradation to the Monte-Carlo tier (:mod:`repro.serve.slo`).

Everything here is standard library only — asyncio, sockets, json,
struct — so the serving tier adds no dependencies.  New transports
(HTTP, unix sockets, ...) should reuse the request/response layer in
:mod:`repro.service.requests` and follow this package's
admission/dispatch structure; see CONTRIBUTING.md.
"""

from .client import AsyncSimilarityClient, SimilarityClient
from .protocol import MAX_FRAME, decode_frame, encode_frame
from .server import SimilarityServer
from .slo import SLOController

__all__ = [
    "AsyncSimilarityClient",
    "MAX_FRAME",
    "SLOController",
    "SimilarityClient",
    "SimilarityServer",
    "decode_frame",
    "encode_frame",
]
