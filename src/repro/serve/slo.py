"""SLO tracking with hysteresis for the serving front-end.

:class:`SLOController` watches a sliding window of request latencies and
decides *one* bit: is the server currently degraded?  While degraded, the
dispatcher routes undecided queries (``approx=None``) to the Monte-Carlo
tier — trading the bounded fingerprint error for latency, exactly the
index→approx→compute preference order the planner applies offline with
static budgets, but driven by the *live* p99 instead.

Two details keep the bit stable rather than flappy:

* **Hysteresis** — degradation starts when the windowed p99 exceeds the
  target, but recovery requires p99 at or below ``recover_ratio`` (default
  0.8×) of the target, so a p99 hovering at the threshold does not toggle
  the tier every batch.
* **Window reset on transition** — samples observed under the *previous*
  regime say nothing about the new one (pre-degradation latencies would
  hold the controller degraded long after the approx tier fixed the
  breach).  Each transition clears the window and waits for
  ``min_samples`` fresh observations before judging again.

The controller is deterministic and clock-free: callers feed it measured
durations, so tests can drive every transition with synthetic latencies.
It is not thread-safe — the server confines it to the dispatcher task.

Since the observability refactor the latency window and counters live on
a :class:`~repro.obs.MetricsRegistry` (instruments ``slo_latency_ms``,
``slo_transitions``, ``slo_degrades``, ``slo_recoveries``, ``slo_observed``
and the ``slo_degraded`` gauge); the historical attributes remain as views
with bit-identical values, and the p99 estimator is unchanged
(nearest-rank over the same bounded window).
"""

from __future__ import annotations

from typing import Optional

from ..exceptions import ConfigurationError
from ..obs import MetricsRegistry
from ..obs.compat import warn_once

__all__ = ["SLOController"]


class SLOController:
    """Turn live p99 latency into a degrade/recover decision.

    Parameters
    ----------
    slo_p99_ms:
        The p99 target in milliseconds; ``None`` disables the controller
        (it then never degrades and records nothing).
    window:
        Sliding-window size in samples for the p99 estimate.
    min_samples:
        Observations required after a reset before the controller judges;
        below it the current state holds.
    recover_ratio:
        Fraction of the target the p99 must drop to before a degraded
        controller recovers (the hysteresis gap).
    registry:
        Optional :class:`~repro.obs.MetricsRegistry` to register the
        controller's instruments on (the server passes its own, so SLO
        state rides the wire ``metrics`` snapshot).  A private registry is
        created when omitted.
    """

    def __init__(
        self,
        slo_p99_ms: Optional[float],
        *,
        window: int = 256,
        min_samples: int = 20,
        recover_ratio: float = 0.8,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if slo_p99_ms is not None and slo_p99_ms <= 0:
            raise ConfigurationError(
                f"slo_p99_ms must be positive, got {slo_p99_ms}"
            )
        if window <= 0:
            raise ConfigurationError(f"window must be positive, got {window}")
        if min_samples <= 0 or min_samples > window:
            raise ConfigurationError(
                f"min_samples must be in [1, window], got {min_samples}"
            )
        if not 0.0 < recover_ratio <= 1.0:
            raise ConfigurationError(
                f"recover_ratio must be in (0, 1], got {recover_ratio}"
            )
        self.slo_p99_ms = slo_p99_ms
        self.min_samples = int(min_samples)
        self.recover_ratio = float(recover_ratio)
        self.registry = registry if registry is not None else MetricsRegistry()
        # The window itself: a histogram whose bounded reservoir *is* the
        # sliding window (same maxlen semantics as the old deque).  The
        # bucket bounds are in milliseconds, unlike the default
        # second-scale bounds.
        self._window = self.registry.histogram(
            "slo_latency_ms",
            buckets=(1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
                     500.0, 1000.0, 2500.0, 5000.0),
            reservoir=int(window),
        )
        self._transitions = self.registry.counter("slo_transitions")
        self._degrades = self.registry.counter("slo_degrades")
        self._recoveries = self.registry.counter("slo_recoveries")
        self._observed = self.registry.counter("slo_observed")
        self._degraded_gauge = self.registry.gauge("slo_degraded")
        self._degraded = False

    @property
    def enabled(self) -> bool:
        """Whether a target is configured at all."""
        return self.slo_p99_ms is not None

    @property
    def degraded(self) -> bool:
        """The current decision: route undecided queries to approx?"""
        return self._degraded

    @property
    def transitions(self) -> int:
        """Total degrade + recover transitions."""
        return int(self._transitions.value)

    @property
    def degrades(self) -> int:
        """Transitions *into* degraded mode."""
        return int(self._degrades.value)

    @property
    def recoveries(self) -> int:
        """Transitions back *out of* degraded mode."""
        return int(self._recoveries.value)

    @property
    def observed(self) -> int:
        """Deprecated: read ``snapshot()["observed"]`` or the
        ``slo_observed`` registry counter instead."""
        warn_once(
            "SLOController.observed",
            "SLOController.observed is deprecated; read snapshot()['observed'] "
            "or the slo_observed counter on SLOController.registry (see the "
            "README observability migration table)",
        )
        return int(self._observed.value)

    def p99_ms(self) -> Optional[float]:
        """The windowed p99, or ``None`` before any observation."""
        samples = self._window.samples()
        if not samples:
            return None
        ordered = sorted(samples)
        # Nearest-rank p99 (matches bench.results.latency_summary).
        rank = min(len(ordered) - 1, int(round(0.99 * (len(ordered) - 1))))
        return ordered[rank]

    def observe(self, seconds: float) -> bool:
        """Record one request latency; returns the (possibly new) decision.

        The duration covers admission to response — queue wait included,
        because queue wait is what the caller experiences.
        """
        if self.slo_p99_ms is None:
            return False
        self._observed.inc()
        self._window.observe(seconds * 1000.0)
        if self._window.count < self.min_samples:
            return self._degraded
        p99 = self.p99_ms()
        assert p99 is not None
        if not self._degraded and p99 > self.slo_p99_ms:
            self._transition(True)
        elif self._degraded and p99 <= self.slo_p99_ms * self.recover_ratio:
            self._transition(False)
        return self._degraded

    def _transition(self, degraded: bool) -> None:
        self._degraded = degraded
        self._degraded_gauge.set(int(degraded))
        self._transitions.inc()
        (self._degrades if degraded else self._recoveries).inc()
        self._window.clear()

    def snapshot(self) -> dict[str, object]:
        """Controller state for the ``stats`` op and benchmark reports."""
        return {
            "slo_p99_ms": self.slo_p99_ms,
            "degraded": self._degraded,
            "live_p99_ms": self.p99_ms(),
            "transitions": self.transitions,
            "degrades": self.degrades,
            "recoveries": self.recoveries,
            "observed": int(self._observed.value),
        }

    def __repr__(self) -> str:
        return (
            f"<SLOController target={self.slo_p99_ms} "
            f"degraded={self._degraded} observed={int(self._observed.value)}>"
        )
