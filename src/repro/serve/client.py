"""Clients for the similarity server: pipelined asyncio and simple blocking.

:class:`AsyncSimilarityClient` keeps many requests in flight on one
connection — each request carries a correlation id, a background reader
task routes every incoming frame to its waiting future, so hundreds of
client coroutines can share one socket (the load generator in
``serve-bench --remote`` does exactly that).  :class:`SimilarityClient`
is the blocking one-request-at-a-time counterpart for scripts and the
README example.

Typed failures arrive as :class:`~repro.service.requests.ServeError`
exactly as in-process callers see them; ``error.retryable`` tells a
client whether backing off and retrying can help (``SHED``,
``UNAVAILABLE``) or the request itself is defective.  A dropped
connection fails every pending request with a retryable ``UNAVAILABLE``
— callers reconnect and resubmit, which the recovery tests exercise.
"""

from __future__ import annotations

import asyncio
import itertools
import socket
from collections.abc import Hashable
from typing import Optional

from ..service.requests import (
    PROTOCOL_VERSION,
    ErrorCode,
    QueryRequest,
    QueryResponse,
    ServeError,
)
from .protocol import read_message, recv_message, send_message, write_message

__all__ = ["AsyncSimilarityClient", "SimilarityClient"]


class AsyncSimilarityClient:
    """A pipelined asyncio client; safe for many concurrent coroutines.

    Use as an async context manager or call :meth:`connect` /
    :meth:`close` explicitly::

        async with await AsyncSimilarityClient.connect(host, port) as client:
            response = await client.query("author-17", k=10)
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self._write_lock = asyncio.Lock()
        self._closed = False
        self._dead: Optional[str] = None
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(
        cls, host: str, port: int, timeout: float = 10.0
    ) -> "AsyncSimilarityClient":
        """Open a connection and start the response reader."""
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout
        )
        return cls(reader, writer)

    async def __aenter__(self) -> "AsyncSimilarityClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -------------------------------------------------------------- #
    # Requests
    # -------------------------------------------------------------- #
    async def query(
        self,
        query: Hashable,
        k: Optional[int] = None,
        *,
        approx: Optional[bool] = None,
        max_error: Optional[float] = None,
        graph_version: Optional[int] = None,
        trace: bool = False,
    ) -> QueryResponse:
        """Ask one top-k question; raises :class:`ServeError` on failure."""
        return await self.request(
            QueryRequest(
                query=query,
                k=k,
                approx=approx,
                max_error=max_error,
                graph_version=graph_version,
                trace=trace,
            )
        )

    async def request(self, request: QueryRequest) -> QueryResponse:
        """Send a prepared :class:`QueryRequest`; the id is assigned here."""
        request_id = next(self._ids)
        request = request.with_request_id(request_id)
        payload = request.to_wire()  # serialise before registering
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            await self._send(payload)
            result = await future
        finally:
            self._pending.pop(request_id, None)
        return result

    async def ping(self) -> bool:
        """Round-trip a ping frame; ``True`` when the server answered."""
        reply = await self._control({"op": "ping", "v": PROTOCOL_VERSION})
        return reply.get("op") == "pong"

    async def stats(self) -> dict:
        """Fetch the server's counters and per-tier statistics."""
        reply = await self._control({"op": "stats", "v": PROTOCOL_VERSION})
        return reply

    async def metrics(self) -> dict:
        """Fetch the full registry snapshot (plus slow-query log)."""
        return await self._control({"op": "metrics", "v": PROTOCOL_VERSION})

    async def close(self) -> None:
        """Close the connection; pending requests fail as ``UNAVAILABLE``."""
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        self._fail_pending("client closed")
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass

    # -------------------------------------------------------------- #
    # Internals
    # -------------------------------------------------------------- #
    async def _send(self, payload: dict) -> None:
        if self._closed:
            raise ServeError(ErrorCode.UNAVAILABLE, "client is closed")
        if self._dead is not None:
            # The reader already saw the connection die; a request sent now
            # could never be answered — fail it immediately instead.
            raise ServeError(ErrorCode.UNAVAILABLE, self._dead)
        try:
            async with self._write_lock:
                await write_message(self._writer, payload)
        except (ConnectionError, BrokenPipeError) as error:
            raise ServeError(
                ErrorCode.UNAVAILABLE, f"connection lost: {error}"
            ) from None

    async def _control(self, payload: dict) -> dict:
        # Control ops carry no id; the reader routes id-less frames to the
        # oldest waiting control future (ops are answered in order).
        future = asyncio.get_running_loop().create_future()
        key = -next(self._ids)  # negative: never collides with request ids
        self._pending[key] = future
        try:
            await self._send(payload)
            return await future
        finally:
            self._pending.pop(key, None)

    async def _read_loop(self) -> None:
        try:
            while True:
                payload = await read_message(self._reader)
                if payload is None:
                    self._fail_pending("server closed the connection")
                    return
                self._route(payload)
        except asyncio.CancelledError:
            raise
        except Exception as error:  # noqa: BLE001 — connection-level failure
            self._fail_pending(f"connection lost: {error}")

    def _route(self, payload: dict) -> None:
        request_id = payload.get("id")
        if request_id is None:
            # Control reply: resolve the oldest waiting control future.
            control_keys = sorted(
                (k for k in self._pending if k < 0), reverse=True
            )
            for key in control_keys:
                future = self._pending[key]
                if not future.done():
                    future.set_result(payload)
                    return
            return  # unsolicited frame; ignore
        future = self._pending.get(request_id)
        if future is None or future.done():
            return  # caller gave up (cancelled/timed out); drop it
        op = payload.get("op")
        if op == "result":
            try:
                future.set_result(QueryResponse.from_wire(payload))
            except ServeError as error:
                future.set_exception(error)
        elif op == "error":
            future.set_exception(ServeError.from_wire(payload))
        else:
            future.set_exception(
                ServeError(
                    ErrorCode.INTERNAL, f"unexpected reply op {op!r}"
                )
            )

    def _fail_pending(self, reason: str) -> None:
        self._dead = reason
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(ServeError(ErrorCode.UNAVAILABLE, reason))


class SimilarityClient:
    """A blocking, one-request-at-a-time client (scripts, examples).

    The ten-line usage from the README::

        from repro.serve import SimilarityClient

        with SimilarityClient("127.0.0.1", 7411) as client:
            response = client.query("author-17", k=5)
            for label, score in response.entries:
                print(label, score)
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._ids = itertools.count(1)

    def __enter__(self) -> "SimilarityClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def query(
        self,
        query: Hashable,
        k: Optional[int] = None,
        *,
        approx: Optional[bool] = None,
        max_error: Optional[float] = None,
        graph_version: Optional[int] = None,
        trace: bool = False,
    ) -> QueryResponse:
        """Ask one top-k question; raises :class:`ServeError` on failure."""
        request = QueryRequest(
            query=query,
            k=k,
            approx=approx,
            max_error=max_error,
            graph_version=graph_version,
            request_id=next(self._ids),
            trace=trace,
        )
        reply = self._round_trip(request.to_wire())
        if reply.get("op") == "error":
            raise ServeError.from_wire(reply)
        return QueryResponse.from_wire(reply)

    def ping(self) -> bool:
        """Round-trip a ping frame; ``True`` when the server answered."""
        return self._round_trip(
            {"op": "ping", "v": PROTOCOL_VERSION}
        ).get("op") == "pong"

    def stats(self) -> dict:
        """Fetch the server's counters and per-tier statistics."""
        return self._round_trip({"op": "stats", "v": PROTOCOL_VERSION})

    def metrics(self) -> dict:
        """Fetch the full registry snapshot (plus slow-query log)."""
        return self._round_trip({"op": "metrics", "v": PROTOCOL_VERSION})

    def close(self) -> None:
        """Close the underlying socket (idempotent)."""
        try:
            self._sock.close()
        except OSError:
            pass

    def _round_trip(self, payload: dict) -> dict:
        try:
            send_message(self._sock, payload)
            reply = recv_message(self._sock)
        except (ConnectionError, BrokenPipeError, socket.timeout, OSError) as error:
            raise ServeError(
                ErrorCode.UNAVAILABLE, f"connection lost: {error}"
            ) from None
        if reply is None:
            raise ServeError(
                ErrorCode.UNAVAILABLE, "server closed the connection"
            )
        return reply
