"""Durable index catalog: versioned segments, manifest, edge log, compaction.

The on-disk successor to the single-``.npz`` index format: a catalog
directory holds an immutable memory-mapped **base segment**, incremental
**delta segments** of refreshed rows, an append-only **edge log**, and one
atomically rewritten ``MANIFEST.json`` that commits them — so a serving
process can be killed at any instant and restart from disk with no rebuild
and bit-identical answers.  See :mod:`repro.catalog.catalog` for the layout
and crash-ordering rules.
"""

from .catalog import (
    EDGELOG_NAME,
    IndexCatalog,
    RestoredState,
    catalog_or_store_path,
)
from .manifest import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    CatalogManifest,
    DeltaRecord,
    graph_fingerprint,
    index_config_digest,
)
from .segments import (
    DeltaSegment,
    open_base_segment,
    read_delta_segment,
    write_base_segment,
    write_delta_segment,
)

__all__ = [
    "EDGELOG_NAME",
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "CatalogManifest",
    "DeltaRecord",
    "DeltaSegment",
    "IndexCatalog",
    "RestoredState",
    "catalog_or_store_path",
    "graph_fingerprint",
    "index_config_digest",
    "open_base_segment",
    "read_delta_segment",
    "write_base_segment",
    "write_delta_segment",
]
