"""The durable index catalog: versioned base + delta segments + edge log.

Directory layout (format version 1)::

    catalog/
      MANIFEST.json        committed state — the only mutable file
      EDGELOG.jsonl        append-only graph mutations (torn tail tolerated)
      base-000000/         current base segment (raw .npy CSR, mmap-opened)
        indptr.npy  columns.npy  values.npy  row_versions.npy
      delta-000000.npz     refreshed rows keyed by graph version
      delta-000001.npz     ...

Writes follow a strict order so a crash at *any* point leaves a readable
catalog: segment files land under their final names via temp +
``os.replace`` first, and only then does an atomic manifest rewrite commit
them.  A segment the manifest never learned about is an orphan — ignored
by readers, reaped by the next :meth:`IndexCatalog.compact`.  The edge log
is appended **before** the similarity state changes, so after a crash the
log is ahead of (never behind) the persisted rows; restore replays it and
marks rows whose last mutation outruns their stored version as dirty —
they lazily recompute, which is what makes kill-and-restart answers
bit-identical instead of almost-right.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..core.similarity_store import PathLike, SimilarityStore
from ..exceptions import ConfigurationError
from .manifest import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    CatalogManifest,
    DeltaRecord,
    graph_fingerprint,
    index_config_digest,
)
from .segments import (
    open_base_segment,
    read_delta_segment,
    write_base_segment,
    write_delta_segment,
)

__all__ = ["IndexCatalog", "RestoredState"]

EDGELOG_NAME = "EDGELOG.jsonl"


@dataclass
class RestoredState:
    """Everything a server needs to come back exactly where it stopped.

    Attributes
    ----------
    store:
        The similarity index — memory-mapped base with every committed
        delta already spliced in.
    row_versions:
        Per-row graph version of the stored scores (base stamp, overridden
        by the newest delta covering the row).
    edge_ops:
        The full replayed edge log as ``(op, source, target, version)``
        tuples, in append order — the caller rebuilds its edge overlay
        from these.
    graph_version:
        Version stamp of the newest *persisted* similarity state.
    log_version:
        Highest version in the edge log (≥ ``graph_version``); the
        mutation counter resumes from here.  Rows whose latest touching
        operation is newer than their ``row_versions`` entry are stale and
        must be treated as dirty.
    """

    store: SimilarityStore
    row_versions: np.ndarray
    edge_ops: list[tuple[str, int, int, int]] = field(default_factory=list)
    graph_version: int = 0
    log_version: int = 0


class IndexCatalog:
    """Handle on one catalog directory.

    Create one with :meth:`create` (persisting a freshly built index) or
    :meth:`open` (attaching to an existing directory); the handle then
    mediates every durable operation — edge-log appends, delta commits,
    compaction, restore.  The handle assumes a single writer (the serving
    process owns its catalog); readers can open concurrently.
    """

    def __init__(self, directory: Path, manifest: CatalogManifest) -> None:
        self.directory = Path(directory)
        self.manifest = manifest
        self._next_delta_id = self._scan_next_delta_id()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def is_catalog(path: PathLike) -> bool:
        """True when ``path`` is a directory holding a catalog manifest."""
        path = Path(path)
        return path.is_dir() and (path / MANIFEST_NAME).is_file()

    @classmethod
    def create(
        cls,
        path: PathLike,
        store: SimilarityStore,
        graph_version: int = 0,
        overwrite: bool = False,
    ) -> "IndexCatalog":
        """Persist a built index as a fresh catalog at ``path``.

        The store must be a serving index (built by
        :func:`~repro.service.index.build_index`, so its ``extra`` carries
        ``index_k``/``iterations``/``backend``).  ``overwrite=True``
        recommits over an existing catalog directory in place — the new
        manifest supersedes the old segments, which become orphans until
        the next compaction reaps them.
        """
        directory = Path(path)
        for key in ("index_k", "iterations"):
            if key not in store.extra:
                raise ConfigurationError(
                    f"store is not a serving index (missing {key} metadata); "
                    "build one with build_index()"
                )
        if directory.exists():
            if not directory.is_dir():
                raise ConfigurationError(f"{directory} exists and is not a directory")
            if cls.is_catalog(directory) and not overwrite:
                raise ConfigurationError(
                    f"{directory} already holds a catalog; pass overwrite=True "
                    "to recommit it"
                )
            if any(directory.iterdir()) and not cls.is_catalog(directory) and not overwrite:
                raise ConfigurationError(
                    f"{directory} exists, is non-empty and is not a catalog"
                )
        graph = store.graph
        manifest = CatalogManifest(
            format_version=FORMAT_VERSION,
            graph_hash=graph_fingerprint(graph),
            config_digest=index_config_digest(
                store.damping, int(store.extra["iterations"]), int(store.extra["index_k"])
            ),
            damping=float(store.damping),
            iterations=int(store.extra["iterations"]),
            index_k=int(store.extra["index_k"]),
            backend=str(store.extra.get("backend", "")),
            num_vertices=graph.num_vertices,
            graph_version=int(graph_version),
            base_generation=0,
        )
        if cls.is_catalog(directory) and overwrite:
            # Recommit: take the next generation so the new base never
            # overwrites arrays a concurrent reader may have mapped.
            manifest.base_generation = CatalogManifest.read(directory).base_generation + 1
        directory.mkdir(parents=True, exist_ok=True)
        row_versions = np.full(graph.num_vertices, int(graph_version), dtype=np.int64)
        write_base_segment(directory / manifest.base_name, store.matrix, row_versions)
        manifest.write(directory)
        edge_log = directory / EDGELOG_NAME
        if overwrite:
            # A recommitted base covers graph_version; older log entries
            # describe mutations the new base already reflects.
            edge_log.unlink(missing_ok=True)
        edge_log.touch(exist_ok=True)
        catalog = cls(directory, manifest)
        catalog._reap_orphans()
        return catalog

    @classmethod
    def open(cls, path: PathLike) -> "IndexCatalog":
        """Attach to the catalog committed at ``path``."""
        directory = Path(path)
        if not cls.is_catalog(directory):
            raise ConfigurationError(f"{directory} is not an index catalog")
        return cls(directory, CatalogManifest.read(directory))

    # ------------------------------------------------------------------ #
    # Validation + restore
    # ------------------------------------------------------------------ #
    def validate(
        self,
        graph,
        damping: Optional[float] = None,
        iterations: Optional[int] = None,
        index_k: Optional[int] = None,
    ) -> None:
        """Raise :class:`ConfigurationError` unless the catalog fits."""
        self.manifest.validate_against(
            graph, damping=damping, iterations=iterations, index_k=index_k
        )

    def restore(self, graph, mmap: bool = True) -> RestoredState:
        """Reopen the committed state against ``graph`` (the *base* graph).

        ``graph`` must be the graph the base was built on — the edge log
        replays the mutations since, so the caller starts from the same
        point the original server did.  The base opens memory-mapped
        (unless ``mmap=False``); committed deltas are spliced in through
        the store's sparse merge path, which copies-on-write exactly once
        if any delta exists.
        """
        self.validate(graph)
        matrix, row_versions = open_base_segment(
            self.directory / self.manifest.base_name, mmap=mmap
        )
        if matrix.shape[0] != graph.num_vertices:
            raise ConfigurationError(
                f"catalog base covers {matrix.shape[0]} vertices, graph has "
                f"{graph.num_vertices}"
            )
        store = SimilarityStore(
            matrix,
            graph,
            algorithm="series-topk",
            damping=self.manifest.damping,
            extra={
                "index_k": self.manifest.index_k,
                "iterations": self.manifest.iterations,
                "backend": self.manifest.backend,
                "graph_hash": self.manifest.graph_hash,
                "config_digest": self.manifest.config_digest,
            },
        )
        for record in self.manifest.deltas:
            delta = read_delta_segment(self.directory / record.file)
            if delta.rows.size:
                store.merge_row_parts(delta.rows.tolist(), delta.parts())
                row_versions[delta.rows] = delta.version
        edge_ops = self.read_edge_log()
        log_version = max(
            (version for _, _, _, version in edge_ops),
            default=self.manifest.graph_version,
        )
        return RestoredState(
            store=store,
            row_versions=row_versions,
            edge_ops=edge_ops,
            graph_version=self.manifest.graph_version,
            log_version=max(log_version, self.manifest.graph_version),
        )

    # ------------------------------------------------------------------ #
    # Durable appends
    # ------------------------------------------------------------------ #
    def append_edge(self, op: str, source: int, target: int, version: int) -> None:
        """Durably log one graph mutation *before* it takes effect.

        Logged-but-unapplied is the recoverable order: restore sees the
        operation, replays it onto the edge overlay, and marks the
        endpoints dirty.  The reverse order would silently lose the
        mutation on a crash between apply and log.
        """
        if op not in ("add", "remove"):
            raise ConfigurationError(f"unknown edge operation {op!r}")
        line = json.dumps(
            {"op": op, "source": int(source), "target": int(target), "version": int(version)}
        )
        with open(self.directory / EDGELOG_NAME, "a") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def read_edge_log(self) -> list[tuple[str, int, int, int]]:
        """Replay the edge log; a torn final line (crash mid-append) is dropped."""
        path = self.directory / EDGELOG_NAME
        if not path.is_file():
            return []
        ops: list[tuple[str, int, int, int]] = []
        lines = path.read_text().splitlines()
        last_payload = next(
            (index for index in range(len(lines) - 1, -1, -1) if lines[index].strip()),
            -1,
        )
        for index, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                ops.append(
                    (
                        str(record["op"]),
                        int(record["source"]),
                        int(record["target"]),
                        int(record["version"]),
                    )
                )
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
                if index == last_payload:
                    break  # torn tail from a crash mid-append: ignore
                raise ConfigurationError(
                    f"edge log {path} is corrupt at line {index + 1}: {error}"
                ) from error
        return ops

    def append_delta(
        self,
        version: int,
        rows,
        parts: list[tuple[np.ndarray, np.ndarray]],
    ) -> Path:
        """Commit one delta segment of refreshed rows at ``version``.

        The ``.npz`` lands under its final name first (temp + replace),
        then the manifest rewrite commits it; a crash in between leaves an
        orphan file that readers ignore.
        """
        rows = np.asarray(rows, dtype=np.int64)
        name = f"delta-{self._next_delta_id:06d}.npz"
        path = self.directory / name
        write_delta_segment(path, version, rows, parts)
        self._next_delta_id += 1
        self.manifest.deltas.append(
            DeltaRecord(file=name, version=int(version), rows=int(rows.size))
        )
        self.manifest.graph_version = max(
            self.manifest.graph_version, int(version)
        )
        self.manifest.write(self.directory)
        return path

    # ------------------------------------------------------------------ #
    # Compaction
    # ------------------------------------------------------------------ #
    def compact(self, memory_budget: Optional[int] = None) -> int:
        """Merge-stream every committed delta into a new base generation.

        Rows flow through the same
        :class:`~repro.service.spill.RowSpillAccumulator` the offline
        build uses (``memory_budget`` bounds the resident set), the newest
        delta per row winning over the base.  The new ``base-{g+1}``
        directory is written first; the manifest rewrite (new generation,
        empty delta list) is the commit point; only then are the old base,
        consumed deltas and any orphans removed.  Returns the number of
        delta segments folded in.
        """
        # Deferred import: service.index imports spill alongside machinery
        # that (transitively) serves from this package.
        from ..service.spill import RowSpillAccumulator

        manifest = self.manifest
        folded = len(manifest.deltas)
        matrix, row_versions = open_base_segment(
            self.directory / manifest.base_name, mmap=True
        )
        n = matrix.shape[0]

        # Latest delta per row wins; deltas are committed in version order.
        fresh: dict[int, tuple[np.ndarray, np.ndarray, int]] = {}
        for record in manifest.deltas:
            delta = read_delta_segment(self.directory / record.file)
            for row, (columns, values) in zip(delta.rows.tolist(), delta.parts()):
                fresh[int(row)] = (columns, values, delta.version)

        new_base = manifest.base_name
        next_generation = manifest.base_generation + 1
        new_base = f"base-{next_generation:06d}"
        with RowSpillAccumulator(memory_budget=memory_budget) as accumulator:
            for row in range(n):
                if row in fresh:
                    columns, values, version = fresh[row]
                    row_versions[row] = version
                    accumulator.append(columns, values)
                else:
                    start, stop = matrix.indptr[row], matrix.indptr[row + 1]
                    accumulator.append(
                        np.asarray(matrix.indices[start:stop], dtype=np.int64),
                        np.asarray(matrix.data[start:stop], dtype=np.float64),
                    )
            merged = accumulator.finish(n)

        old_base = self.directory / manifest.base_name
        write_base_segment(self.directory / new_base, merged, row_versions)
        manifest.base_generation = next_generation
        manifest.deltas = []
        manifest.write(self.directory)  # commit point

        # Post-commit cleanup; stray files here are cosmetic, never state.
        self._remove_tree(old_base)
        self._reap_orphans()
        self._next_delta_id = self._scan_next_delta_id()
        return folded

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _scan_next_delta_id(self) -> int:
        """First delta id no committed record or orphan file occupies."""
        used = [-1]
        for record in self.manifest.deltas:
            stem = Path(record.file).stem
            if stem.startswith("delta-"):
                try:
                    used.append(int(stem.split("-", 1)[1]))
                except ValueError:
                    pass
        for path in self.directory.glob("delta-*.npz"):
            try:
                used.append(int(path.stem.split("-", 1)[1]))
            except ValueError:
                continue
        return max(used) + 1

    def _reap_orphans(self) -> None:
        """Remove segment files the committed manifest does not reference."""
        live = {self.manifest.base_name} | {
            record.file for record in self.manifest.deltas
        }
        for path in self.directory.glob("base-*"):
            if path.is_dir() and path.name not in live:
                self._remove_tree(path)
        for path in self.directory.glob("delta-*.npz"):
            if path.name not in live:
                path.unlink(missing_ok=True)

    @staticmethod
    def _remove_tree(path: Path) -> None:
        import shutil

        shutil.rmtree(path, ignore_errors=True)


def catalog_or_store_path(path: PathLike) -> Union[IndexCatalog, Path]:
    """Dispatch helper: a catalog handle for catalog directories, else the path."""
    if IndexCatalog.is_catalog(path):
        return IndexCatalog.open(path)
    return Path(path)
