"""Catalog manifest: the single JSON record that *is* the commit point.

A durable index catalog is a directory of immutable segment files plus one
mutable ``MANIFEST.json``.  Every state transition — creating the catalog,
appending a delta segment, compacting deltas into a new base — ends with an
atomic rewrite of the manifest (temp file + ``os.replace``), so a reader
always sees either the previous committed state or the next one, never a
half-written mix.  Segment files not referenced by the manifest are orphans
from an interrupted writer and are ignored (and reaped by compaction).

The manifest also carries the catalog's *identity*: a fingerprint of the
graph the index was built on and a digest of the engine parameters that
shaped the scores.  Loading a catalog against the wrong graph or the wrong
configuration is a :class:`~repro.exceptions.ConfigurationError`, not a
silently wrong answer — the validation bug this module exists to fix.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from ..exceptions import ConfigurationError

__all__ = [
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "CatalogManifest",
    "DeltaRecord",
    "graph_fingerprint",
    "index_config_digest",
]

FORMAT_VERSION = 1
"""On-disk format version.  Bump on any layout change a v1 reader cannot
interpret; readers reject manifests *newer* than they understand and keep
reading older ones (see CONTRIBUTING for the compatibility policy)."""

MANIFEST_NAME = "MANIFEST.json"


def graph_fingerprint(graph) -> str:
    """Deterministic identity hash of a graph's structure.

    SHA-256 over the vertex count and the *sorted, deduplicated* edge list.
    Deduplication makes the fingerprint agree between a graph built with
    repeated edges and the service's edge-set overlay of the same graph
    (SimRank semantics never count an edge twice either).  Labels are not
    hashed: the index stores vertex ids, so two graphs that differ only in
    labelling can legitimately share an index.
    """
    digest = hashlib.sha256()
    digest.update(f"n={graph.num_vertices}".encode())
    for source, target in sorted(set(graph.edges())):
        digest.update(f";{source}>{target}".encode())
    return digest.hexdigest()


def index_config_digest(damping: float, iterations: int, index_k: int) -> str:
    """Digest of the engine parameters that determine the stored scores.

    Only score-shaping parameters participate: ``damping`` and
    ``iterations`` fix the truncated series, ``index_k`` fixes the
    truncation.  Serving-side knobs (cache size, batching, workers) never
    change a stored score, so they are deliberately absent — an index is
    reusable across them.
    """
    canonical = json.dumps(
        {
            "damping": float(damping),
            "iterations": int(iterations),
            "index_k": int(index_k),
        },
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass
class DeltaRecord:
    """One committed delta segment: which file, which graph version, how many rows."""

    file: str
    version: int
    rows: int

    def to_json(self) -> dict[str, object]:
        return {"file": self.file, "version": int(self.version), "rows": int(self.rows)}

    @classmethod
    def from_json(cls, payload: dict[str, object]) -> "DeltaRecord":
        return cls(
            file=str(payload["file"]),
            version=int(payload["version"]),  # type: ignore[arg-type]
            rows=int(payload["rows"]),  # type: ignore[arg-type]
        )


@dataclass
class CatalogManifest:
    """The committed state of a catalog directory.

    Attributes
    ----------
    format_version:
        On-disk layout version (see :data:`FORMAT_VERSION`).
    graph_hash:
        :func:`graph_fingerprint` of the graph the *base* was built on.
    config_digest:
        :func:`index_config_digest` of the score-shaping parameters.
    damping, iterations, index_k, backend:
        The parameters themselves, kept readable alongside the digest so a
        mismatch error can say *what* differed, and so a catalog can be
        opened without re-supplying them.
    num_vertices:
        Vertex count of the indexed graph.
    graph_version:
        Mutation counter of the graph state the committed segments cover:
        0 for a fresh base, and the version stamp of the newest committed
        delta afterwards.  Edge-log entries beyond it are operations whose
        refreshed rows were not yet persisted when the writer stopped.
    base_generation:
        Monotone counter naming the current base directory
        (``base-{generation:06d}``); compaction writes generation ``g+1``
        and only then retires generation ``g``.
    deltas:
        Committed delta segments, in append (= version) order.
    """

    format_version: int
    graph_hash: str
    config_digest: str
    damping: float
    iterations: int
    index_k: int
    backend: str
    num_vertices: int
    graph_version: int = 0
    base_generation: int = 0
    deltas: list[DeltaRecord] = field(default_factory=list)

    @property
    def base_name(self) -> str:
        """Directory name of the current base segment."""
        return f"base-{self.base_generation:06d}"

    def to_json(self) -> dict[str, object]:
        return {
            "format_version": int(self.format_version),
            "graph_hash": self.graph_hash,
            "config_digest": self.config_digest,
            "damping": float(self.damping),
            "iterations": int(self.iterations),
            "index_k": int(self.index_k),
            "backend": self.backend,
            "num_vertices": int(self.num_vertices),
            "graph_version": int(self.graph_version),
            "base_generation": int(self.base_generation),
            "deltas": [delta.to_json() for delta in self.deltas],
        }

    @classmethod
    def from_json(cls, payload: dict[str, object]) -> "CatalogManifest":
        try:
            format_version = int(payload["format_version"])  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError) as error:
            raise ConfigurationError(
                "catalog manifest carries no readable format_version"
            ) from error
        if format_version > FORMAT_VERSION:
            raise ConfigurationError(
                f"catalog format_version {format_version} is newer than this "
                f"reader understands (max {FORMAT_VERSION}); upgrade the "
                "package or rebuild the catalog"
            )
        try:
            return cls(
                format_version=format_version,
                graph_hash=str(payload["graph_hash"]),
                config_digest=str(payload["config_digest"]),
                damping=float(payload["damping"]),  # type: ignore[arg-type]
                iterations=int(payload["iterations"]),  # type: ignore[arg-type]
                index_k=int(payload["index_k"]),  # type: ignore[arg-type]
                backend=str(payload.get("backend", "")),
                num_vertices=int(payload["num_vertices"]),  # type: ignore[arg-type]
                graph_version=int(payload.get("graph_version", 0)),  # type: ignore[arg-type]
                base_generation=int(payload.get("base_generation", 0)),  # type: ignore[arg-type]
                deltas=[
                    DeltaRecord.from_json(delta)
                    for delta in payload.get("deltas", [])  # type: ignore[union-attr]
                ],
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ConfigurationError(
                f"catalog manifest is missing or corrupts a required field: {error}"
            ) from error

    def write(self, directory: Path) -> Path:
        """Atomically (re)write this manifest into ``directory``.

        The temp-file + ``os.replace`` dance makes the rewrite the commit
        point: a crash before the replace leaves the previous manifest
        intact, a crash after leaves the new one — never a torn file.
        """
        path = Path(directory) / MANIFEST_NAME
        payload = json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"
        descriptor, temp_name = tempfile.mkstemp(
            prefix=MANIFEST_NAME + ".", dir=str(directory)
        )
        try:
            with os.fdopen(descriptor, "w") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_name, path)
        except BaseException:
            Path(temp_name).unlink(missing_ok=True)
            raise
        return path

    @classmethod
    def read(cls, directory: Path) -> "CatalogManifest":
        """Read and validate the manifest committed in ``directory``."""
        path = Path(directory) / MANIFEST_NAME
        if not path.is_file():
            raise ConfigurationError(f"{directory} holds no {MANIFEST_NAME}")
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"catalog manifest {path} is not valid JSON: {error}"
            ) from error
        if not isinstance(payload, dict):
            raise ConfigurationError(f"catalog manifest {path} is not a JSON object")
        return cls.from_json(payload)

    def validate_against(
        self,
        graph,
        damping: Optional[float] = None,
        iterations: Optional[int] = None,
        index_k: Optional[int] = None,
    ) -> None:
        """Reject a wrong-graph or wrong-config load with a precise error.

        The graph check compares :func:`graph_fingerprint`, so two graphs
        of the same size but different structure no longer slip through
        (the bug the old vertex-count-only check allowed).  Parameter
        checks run only for parameters the caller supplies.
        """
        if graph.num_vertices != self.num_vertices:
            raise ConfigurationError(
                f"catalog indexes {self.num_vertices} vertices, graph has "
                f"{graph.num_vertices}"
            )
        fingerprint = graph_fingerprint(graph)
        if fingerprint != self.graph_hash:
            raise ConfigurationError(
                "catalog was built for a different graph (fingerprint "
                f"{self.graph_hash[:12]}… vs {fingerprint[:12]}…); an index "
                "serves garbage against the wrong graph, rebuild it instead"
            )
        mismatches = []
        if damping is not None and float(damping) != self.damping:
            mismatches.append(f"damping {self.damping} vs requested {damping}")
        if iterations is not None and int(iterations) != self.iterations:
            mismatches.append(
                f"iterations {self.iterations} vs requested {iterations}"
            )
        if index_k is not None and int(index_k) != self.index_k:
            mismatches.append(f"index_k {self.index_k} vs requested {index_k}")
        if mismatches:
            raise ConfigurationError(
                "catalog configuration mismatch: " + "; ".join(mismatches)
            )
