"""Segment I/O: immutable base and delta files under a catalog directory.

A **base segment** is a directory of raw ``.npy`` arrays — the CSR triple
(``indptr``/``columns``/``values``) plus a per-row ``row_versions`` stamp —
written once and opened with ``np.load(mmap_mode="r")``.  Raw ``.npy`` (not
a compressed ``.npz``) is what makes the memory-mapped open real: serving
starts warm with the OS paging rows in on demand, never materialising the
full CSR.  Index arrays are written as int32 whenever the values fit —
scipy keeps int32 CSR index arrays as zero-copy views over the memmap,
while int64 arrays would be down-cast (copied, defeating the map).

A **delta segment** is one compressed ``.npz`` holding a run of refreshed
truncated rows keyed by the graph version that produced them.  Deltas are
small (a handful of rows per mutation batch), so compression wins over
mappability there.  Both kinds are written to a temp name and committed
with ``os.replace`` so a torn write never leaves a half-file under a name
the manifest could reference.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np
from scipy import sparse

from ..exceptions import ConfigurationError

__all__ = [
    "DeltaSegment",
    "open_base_segment",
    "read_delta_segment",
    "write_base_segment",
    "write_delta_segment",
]

_INT32_MAX = np.iinfo(np.int32).max


def _index_dtype(max_value: int) -> np.dtype:
    """int32 when every value fits (the mmap-friendly choice), else int64."""
    return np.dtype(np.int32) if max_value <= _INT32_MAX else np.dtype(np.int64)


def _write_array(directory: Path, name: str, array: np.ndarray) -> None:
    """Write one ``.npy`` under ``directory`` via temp + atomic replace."""
    descriptor, temp_name = tempfile.mkstemp(prefix=name + ".", dir=str(directory))
    try:
        with os.fdopen(descriptor, "wb") as handle:
            np.save(handle, array)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, directory / f"{name}.npy")
    except BaseException:
        Path(temp_name).unlink(missing_ok=True)
        raise


def write_base_segment(
    directory: Path,
    matrix: sparse.csr_matrix,
    row_versions: np.ndarray,
) -> None:
    """Write a CSR matrix and its row-version stamps as a base segment.

    ``directory`` is created (parents included); existing arrays under it
    are overwritten atomically.  The caller commits the segment by
    referencing its name from the manifest — an unreferenced directory is
    an ignorable orphan.
    """
    directory = Path(directory)
    n = matrix.shape[0]
    if row_versions.shape != (n,):
        raise ConfigurationError(
            f"row_versions must have shape ({n},), got {row_versions.shape}"
        )
    directory.mkdir(parents=True, exist_ok=True)
    index_dtype = _index_dtype(max(int(matrix.indptr[-1]), n))
    _write_array(directory, "indptr", matrix.indptr.astype(index_dtype, copy=False))
    _write_array(directory, "columns", matrix.indices.astype(index_dtype, copy=False))
    _write_array(
        directory, "values", matrix.data.astype(np.float64, copy=False)
    )
    _write_array(
        directory, "row_versions", np.asarray(row_versions, dtype=np.int64)
    )


def open_base_segment(
    directory: Path, mmap: bool = True
) -> tuple[sparse.csr_matrix, np.ndarray]:
    """Open a base segment; return ``(matrix, row_versions)``.

    With ``mmap=True`` (the default) the CSR arrays stay read-only views
    over ``np.load(mmap_mode="r")`` memmaps — the store's copy-on-write
    hook materialises private copies only if a mutation ever lands.
    ``row_versions`` is always materialised (it is tiny and the restore
    path updates it in place).
    """
    directory = Path(directory)
    mode = "r" if mmap else None
    try:
        indptr = np.load(directory / "indptr.npy", mmap_mode=mode)
        columns = np.load(directory / "columns.npy", mmap_mode=mode)
        values = np.load(directory / "values.npy", mmap_mode=mode)
        row_versions = np.array(
            np.load(directory / "row_versions.npy"), dtype=np.int64
        )
    except (FileNotFoundError, ValueError) as error:
        raise ConfigurationError(
            f"{directory} is not a readable base segment: {error}"
        ) from error
    n = indptr.shape[0] - 1
    if row_versions.shape != (n,):
        raise ConfigurationError(
            f"base segment {directory} is inconsistent: {n} rows but "
            f"{row_versions.shape[0]} row versions"
        )
    matrix = sparse.csr_matrix((values, columns, indptr), shape=(n, n))
    return matrix, row_versions


@dataclass
class DeltaSegment:
    """One delta's payload: refreshed truncated rows at a graph version.

    ``lengths[i]`` entries of ``columns``/``values`` belong to ``rows[i]``,
    in :func:`~repro.core.similarity_store.row_top_k` convention (ascending
    columns, diagonal excluded).
    """

    version: int
    rows: np.ndarray
    lengths: np.ndarray
    columns: np.ndarray
    values: np.ndarray

    def parts(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """Split the flat payload back into per-row ``(columns, values)``."""
        bounds = np.concatenate(([0], np.cumsum(self.lengths)))
        return [
            (
                self.columns[bounds[i] : bounds[i + 1]],
                self.values[bounds[i] : bounds[i + 1]],
            )
            for i in range(self.rows.size)
        ]


def write_delta_segment(
    path: Path,
    version: int,
    rows: np.ndarray,
    parts: list[tuple[np.ndarray, np.ndarray]],
) -> None:
    """Write one delta ``.npz`` via temp + atomic replace."""
    path = Path(path)
    rows = np.asarray(rows, dtype=np.int64)
    if rows.size != len(parts):
        raise ConfigurationError(
            f"delta covers {rows.size} rows but carries {len(parts)} parts"
        )
    lengths = np.fromiter(
        (columns.size for columns, _ in parts), dtype=np.int64, count=len(parts)
    )
    columns = (
        np.concatenate([np.asarray(c, dtype=np.int64) for c, _ in parts])
        if parts
        else np.empty(0, dtype=np.int64)
    )
    values = (
        np.concatenate([np.asarray(v, dtype=np.float64) for _, v in parts])
        if parts
        else np.empty(0, dtype=np.float64)
    )
    descriptor, temp_name = tempfile.mkstemp(prefix=path.name + ".", dir=str(path.parent))
    try:
        with os.fdopen(descriptor, "wb") as handle:
            np.savez_compressed(
                handle,
                version=np.int64(version),
                rows=rows,
                lengths=lengths,
                columns=columns,
                values=values,
            )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, path)
    except BaseException:
        Path(temp_name).unlink(missing_ok=True)
        raise


def read_delta_segment(path: Path) -> DeltaSegment:
    """Read one committed delta ``.npz``."""
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as archive:
            return DeltaSegment(
                version=int(archive["version"]),
                rows=np.array(archive["rows"], dtype=np.int64),
                lengths=np.array(archive["lengths"], dtype=np.int64),
                columns=np.array(archive["columns"], dtype=np.int64),
                values=np.array(archive["values"], dtype=np.float64),
            )
    except (FileNotFoundError, KeyError, ValueError) as error:
        raise ConfigurationError(
            f"{path} is not a readable delta segment: {error}"
        ) from error
